"""Critical-path attribution over observed traces.

Walks the causal structure of one observed Chrome trace (duration spans
plus the flow edges of :mod:`repro.obs.flow`) and answers three questions:

1. **Where did the step's wall time go?**  :func:`attribute_steps` sweeps
   every ``train.step`` window and buckets each instant, per rank, into
   *compute* (compute-phase spans only), *comm-exposed* (communication
   with no compute under it — the time Fig. 5's overlap failed to hide),
   *overlapped* (both at once) and *idle* (neither).  The four buckets
   partition the window by construction, which
   :func:`check_conservation` verifies to ``CONSERVATION_RTOL``.

2. **Does the observed overlap match the model?**  :func:`attribute_trace`
   replays the first observed attention pass through the *same* DES graph
   that prices the prediction (:func:`repro.perf.criticalpath
   .attention_pass_sim`), substituting transition durations priced from
   the bytes each observed ring transition actually carried, and pins the
   resulting exposed-communication fraction against the modeled one — and,
   under the unidirectional mode, the replayed comm-busy seconds against
   the closed forms of :func:`repro.perf.cost.attention_step_sizes`.

3. **Who is slow?**  :func:`straggler_ranking` aggregates the simulated
   stall seconds of ``lease.wait`` / ``failure.detect`` spans per rank,
   and :func:`critical_spans` ranks individual spans by cost (simulated
   wait seconds when present, wall time otherwise) — the table a
   post-mortem bundle leads with.
"""

from __future__ import annotations

import json
from bisect import bisect_right
from typing import Any

from repro.obs.report import _as_payload, _x_events

__all__ = [
    "ATTRIBUTION_SCHEMA",
    "COMM_PHASES",
    "COMPUTE_PHASES",
    "CONSERVATION_RTOL",
    "attribute_steps",
    "attribute_trace",
    "check_conservation",
    "critical_spans",
    "render_attribution",
    "step_windows",
    "straggler_ranking",
    "validate_attribution_json",
]

#: Span phases whose occupancy counts as computation.
COMPUTE_PHASES = frozenset({"compute", "ckpt-recompute", "lmhead"})

#: Span phases whose occupancy counts as communication.
COMM_PHASES = frozenset({"comm", "intra-ring", "inter-ring", "pp"})

#: Relative tolerance of the bucket-conservation gate.
CONSERVATION_RTOL = 1e-9

ATTRIBUTION_SCHEMA = "obs-attribution/v1"

#: keys every attribution document must carry
ATTRIBUTION_KEYS = (
    "schema",
    "metadata",
    "steps",
    "conservation",
    "stragglers",
    "critical_spans",
    "pins",
    "ok",
)

#: Span names carrying simulated stall seconds (``args.sim_wait_s``).
_STALL_SPANS = ("lease.wait", "failure.detect")

_EPS_US = 0.002  # absorbs the exporter's 3-decimal rounding


# --------------------------------------------------------------------------
# per-step, per-rank wall-time attribution
# --------------------------------------------------------------------------

def step_windows(payload: dict | str) -> list[tuple[int, float, float]]:
    """``(step, start_us, end_us)`` of every ``train.step`` span, by time."""
    windows = []
    for e in _x_events(payload):
        if e.get("name") != "train.step":
            continue
        step = e.get("args", {}).get("step", len(windows))
        windows.append((step, e["ts"], e["ts"] + e["dur"]))
    windows.sort(key=lambda w: w[1])
    return windows


def _merged(intervals: list[tuple[float, float]]) -> list[tuple[float, float]]:
    out: list[tuple[float, float]] = []
    for s, e in sorted(intervals):
        if out and s <= out[-1][1]:
            out[-1] = (out[-1][0], max(out[-1][1], e))
        else:
            out.append((s, e))
    return out


def _covered(merged: list[tuple[float, float]], x: float) -> bool:
    i = bisect_right(merged, (x, float("inf"))) - 1
    return i >= 0 and merged[i][1] > x


def _trace_ranks(payload: dict, events: list[dict]) -> list[int | None]:
    world = payload.get("metadata", {}).get("world_size")
    if world:
        return list(range(int(world)))
    seen = sorted(
        {e.get("args", {}).get("rank") for e in events} - {None}
    )
    return list(seen) or [None]


def attribute_steps(payload: dict | str) -> list[dict[str, Any]]:
    """Per-step, per-rank wall-time buckets over every ``train.step``.

    Each instant of a step window lands in exactly one bucket —
    ``compute_us`` / ``comm_exposed_us`` / ``overlapped_us`` / ``idle_us``
    — determined by whether a compute-phase and/or comm-phase span covers
    it.  Spans carrying ``args.rank`` count only toward that rank; the SPMD
    simulator's rank-less spans count for every rank.  The buckets sum to
    the window's wall time by construction (an elementary-interval sweep:
    every boundary is a span edge, membership decided at midpoints).
    """
    payload = _as_payload(payload)
    events = _x_events(payload)
    ranks = _trace_ranks(payload, events)
    out: list[dict[str, Any]] = []
    for step, t0, t1 in step_windows(payload):
        per_rank: dict[str, dict[str, float]] = {}
        for rank in ranks:
            compute: list[tuple[float, float]] = []
            comm: list[tuple[float, float]] = []
            for e in events:
                args = e.get("args", {})
                phase = args.get("phase")
                if phase in COMPUTE_PHASES:
                    bucket = compute
                elif phase in COMM_PHASES:
                    bucket = comm
                else:
                    continue
                er = args.get("rank")
                if er is not None and rank is not None and er != rank:
                    continue
                s = max(e["ts"], t0)
                end = min(e["ts"] + e["dur"], t1)
                if end > s:
                    bucket.append((s, end))
            mc, mm = _merged(compute), _merged(comm)
            bounds = sorted(
                {t0, t1}
                | {b for iv in mc for b in iv}
                | {b for iv in mm for b in iv}
            )
            buckets = {
                "compute_us": 0.0,
                "comm_exposed_us": 0.0,
                "overlapped_us": 0.0,
                "idle_us": 0.0,
            }
            for a, b in zip(bounds, bounds[1:]):
                if b <= a:
                    continue
                mid = (a + b) / 2
                in_c, in_m = _covered(mc, mid), _covered(mm, mid)
                key = (
                    "overlapped_us" if in_c and in_m
                    else "compute_us" if in_c
                    else "comm_exposed_us" if in_m
                    else "idle_us"
                )
                buckets[key] += b - a
            per_rank["all" if rank is None else str(rank)] = buckets
        out.append({
            "step": step,
            "ts_us": t0,
            "wall_us": t1 - t0,
            "ranks": per_rank,
        })
    return out


def check_conservation(
    steps: list[dict[str, Any]], rtol: float = CONSERVATION_RTOL
) -> tuple[bool, float]:
    """Verify the four buckets sum to each step's wall time on every rank.

    Returns ``(ok, max_relative_error)``.
    """
    max_err = 0.0
    for step in steps:
        wall = step["wall_us"]
        for buckets in step["ranks"].values():
            total = (
                buckets["compute_us"] + buckets["comm_exposed_us"]
                + buckets["overlapped_us"] + buckets["idle_us"]
            )
            err = abs(total - wall) / wall if wall else abs(total - wall)
            max_err = max(max_err, err)
    return max_err <= rtol, max_err


# --------------------------------------------------------------------------
# stragglers and critical spans
# --------------------------------------------------------------------------

def straggler_ranking(payload: dict | str) -> list[dict[str, Any]]:
    """Rank ranks by simulated stall seconds charged against them.

    ``lease.wait`` and ``failure.detect`` spans carry ``args.sim_wait_s``
    (the detector-clock seconds the slowest participant held everyone up)
    and ``args.rank`` (who); ``lease.extend`` spans count lease extensions
    granted.  Returns one record per implicated rank, worst first; an
    empty list means no rank ever exceeded the nominal op time.
    """
    stats: dict[Any, dict[str, Any]] = {}
    for e in _x_events(payload):
        name = e.get("name")
        if name not in _STALL_SPANS and name != "lease.extend":
            continue
        args = e.get("args", {})
        rank = args.get("rank")
        rec = stats.setdefault(
            rank, {"rank": rank, "stall_s": 0.0, "extensions": 0, "waits": 0}
        )
        if name == "lease.extend":
            rec["extensions"] += 1
        else:
            rec["stall_s"] += float(args.get("sim_wait_s", 0.0))
            rec["waits"] += 1
    return sorted(
        stats.values(), key=lambda r: (-r["stall_s"], -r["extensions"])
    )


def critical_spans(payload: dict | str, k: int = 5) -> list[dict[str, Any]]:
    """Top-``k`` spans by cost: the table a post-mortem leads with.

    Cost is ``args.sim_wait_s`` when the span carries one (detector stalls
    dominate at simulated-seconds scale) and wall duration otherwise.
    Umbrella spans that merely contain other work (``train.step``, the
    ``attn`` pass wrappers, ``resilient.*`` delivery wrappers) are
    excluded so the ranking points at actual leaves.
    """
    entries = []
    for e in _x_events(payload):
        name = e.get("name", "")
        args = e.get("args", {})
        if (
            name == "train.step"
            or name.startswith("resilient.")
            or args.get("phase") in ("step", "attn")
        ):
            continue
        if "sim_wait_s" in args:
            cost, kind = float(args["sim_wait_s"]), "sim-wait"
        else:
            cost, kind = e["dur"] / 1e6, "wall"
        entries.append({
            "name": name,
            "phase": args.get("phase"),
            "rank": args.get("rank"),
            "ts_us": e["ts"],
            "dur_us": e["dur"],
            "cost_s": cost,
            "kind": kind,
        })
    entries.sort(key=lambda r: -r["cost_s"])
    return entries[:k]


# --------------------------------------------------------------------------
# observed-pass replay and the exposed-comm pin
# --------------------------------------------------------------------------

def _observed_hop_bytes(
    transition: dict, events: list[dict], logical: str, channel: str
) -> float:
    """Per-hop payload bytes of one observed ring transition.

    The transition span wraps one ``comm.ring_shift`` per concurrent ring
    (or one ``comm.exchange`` for the reverse seed); each logs the summed
    bytes over its hops, so bytes-per-transfer of any contained comm span
    is the circulating bundle size.
    """
    t0, t1 = transition["ts"], transition["ts"] + transition["dur"]
    best = 0.0
    for e in events:
        if e.get("name") not in ("comm.ring_shift", "comm.exchange"):
            continue
        args = e.get("args", {})
        if args.get("logical") != logical:
            continue
        if args.get("channel", "fwd") != channel:
            continue
        if e["ts"] < t0 - _EPS_US or e["ts"] + e["dur"] > t1 + _EPS_US:
            continue
        transfers = max(int(args.get("transfers", 1)), 1)
        best = max(best, float(args.get("nbytes", 0.0)) / transfers)
    return best


def _price_transitions(
    observed: list[dict],
    modeled: list[tuple[str, float]],
    events: list[dict],
    topology,
    logical: str,
    channel: str,
    *,
    lenient_first: bool = False,
) -> tuple[list[tuple[str, float]], list[str]]:
    """Price observed transitions at their logged bytes on modeled links.

    Returns the ``(resource, duration)`` list to substitute into the DES
    replay, plus any structural mismatches (observed link row disagreeing
    with the schedule's modeled link class, or a transition containing no
    byte-carrying comm span).  ``lenient_first`` skips the row check for
    the reverse stream's seeding exchange, whose mixed permutation the
    model prices at the last transition's class by convention.
    """
    from repro.topology import LinkClass

    priced: list[tuple[str, float]] = []
    problems: list[str] = []
    for i, (tr, (res, _)) in enumerate(zip(observed, modeled)):
        row = tr.get("args", {}).get("phase", "")
        kind = "inter" if row == "inter-ring" else "intra"
        if kind != res and not (lenient_first and i == 0):
            problems.append(
                f"{logical}/{channel} transition {i}: observed {kind} "
                f"link, schedule models {res}"
            )
        hop = _observed_hop_bytes(tr, events, logical, channel)
        if hop <= 0:
            problems.append(
                f"{logical}/{channel} transition {i}: no byte-carrying "
                "comm span inside the transition window"
            )
        cls = LinkClass.INTRA if res == "intra" else LinkClass.INTER
        priced.append((res, topology.transfer_time(hop, cls)))
    return priced, problems


def _pass_stall_s(events: list[dict], logical: str) -> float:
    return sum(
        float(e.get("args", {}).get("sim_wait_s", 0.0))
        for e in events
        if e.get("name") in _STALL_SPANS
        and e.get("args", {}).get("logical") == logical
    )


def _pin_pass(
    payload: dict,
    method: str,
    topology,
    workload,
    *,
    logical: str,
    backward: bool,
    ring_mode: str,
    tolerance: float,
) -> dict[str, Any]:
    """Pin one observed attention pass against its DES prediction.

    Replays the first observed pass through the method's own task graph
    with transition durations priced from observed bytes, then compares
    (a) the exposed-communication fraction — stall-adjusted, so detector
    waits count as exposed — against the modeled fraction, and (b) under
    the unidirectional mode, the replayed comm-busy seconds against the
    Table-1 closed forms.
    """
    from repro.perf.criticalpath import (
        _pass_transition_lists,
        attention_pass_sim,
        closed_form_pass_comm,
        summarize_sim,
    )

    pin: dict[str, Any] = {"logical": logical, "ok": False}
    fwd_model, rev_model = _pass_transition_lists(
        method, topology, workload, backward=backward, ring_mode=ring_mode
    )
    events = _x_events(payload)
    trans = sorted(
        (
            e for e in events
            if e.get("name") == "ring.transition"
            and e.get("args", {}).get("logical") == logical
        ),
        key=lambda e: e["ts"],
    )
    fwd_ev = [e for e in trans if e["args"].get("direction", "fwd") != "rev"]
    rev_ev = [e for e in trans if e["args"].get("direction") == "rev"]
    n_f, n_r = len(fwd_model), len(rev_model or [])
    if n_f == 0:
        pin["error"] = f"{method} models no transitions for {logical}"
        return pin
    if (
        not fwd_ev
        or len(fwd_ev) % n_f
        or (n_r and (len(rev_ev) % n_r or len(rev_ev) // n_r != len(fwd_ev) // n_f))
        or (not n_r and rev_ev)
    ):
        pin["error"] = (
            f"observed {len(fwd_ev)} fwd / {len(rev_ev)} rev transitions "
            f"for {logical}; expected equal multiples of {n_f} / {n_r} per pass"
        )
        return pin
    passes = len(fwd_ev) // n_f
    fwd_obs, problems = _price_transitions(
        fwd_ev[:n_f], fwd_model, events, topology, logical, "fwd"
    )
    rev_obs = None
    if n_r:
        rev_obs, rev_problems = _price_transitions(
            rev_ev[:n_r], rev_model, events, topology, logical, "rev",
            lenient_first=True,
        )
        problems += rev_problems
    if problems:
        pin["error"] = "; ".join(problems)
        return pin
    obs_sim = summarize_sim(attention_pass_sim(
        method, topology, workload, backward=backward, ring_mode=ring_mode,
        fwd_durations=fwd_obs, rev_durations=rev_obs,
    ))
    pred_sim = summarize_sim(attention_pass_sim(
        method, topology, workload, backward=backward, ring_mode=ring_mode,
    ))
    stall_pp = _pass_stall_s(events, logical) / passes
    denom = obs_sim["makespan_s"] + stall_pp
    obs_frac = (obs_sim["exposed_comm_s"] + stall_pp) / denom if denom else 0.0
    pred_frac = pred_sim["exposed_comm_frac"]
    frac_ok = abs(obs_frac - pred_frac) <= tolerance
    closed = replay_comm = None
    closed_ok = True
    if ring_mode != "bidirectional":
        closed = closed_form_pass_comm(
            method, topology, workload, backward=backward
        )
        replay_comm = obs_sim["comm_busy_s"]
        closed_ok = closed > 0 and abs(replay_comm - closed) <= tolerance * closed
    pin.update({
        "passes": passes,
        "observed_frac": obs_frac,
        "predicted_frac": pred_frac,
        "stall_s_per_pass": stall_pp,
        "replay": obs_sim,
        "predicted": pred_sim,
        "closed_form_comm_s": closed,
        "replay_comm_s": replay_comm,
        "frac_ok": frac_ok,
        "closed_form_ok": closed_ok,
        "ok": frac_ok and closed_ok,
    })
    return pin


# --------------------------------------------------------------------------
# the full attribution document
# --------------------------------------------------------------------------

def attribute_trace(
    payload: dict | str, *, tolerance: float = 0.05, top: int = 5
) -> dict[str, Any]:
    """Full causal attribution of one observed trace.

    Combines the per-step/per-rank wall-time buckets (with conservation
    check), the straggler ranking, the top-``top`` critical spans, and —
    for ring-family methods whose metadata names the config — the
    per-pass exposed-communication pins against the DES prediction and
    closed forms.  The document's ``ok`` is the overall gate: buckets
    conserve, every pin holds, and no rank stalled the detector clock.
    """
    payload = _as_payload(payload)
    meta = dict(payload.get("metadata", {}))
    steps = attribute_steps(payload)
    cons_ok, max_err = check_conservation(steps)
    stragglers = straggler_ranking(payload)
    doc: dict[str, Any] = {
        "schema": ATTRIBUTION_SCHEMA,
        "metadata": meta,
        "steps": steps,
        "conservation": {
            "ok": cons_ok, "max_rel_err": max_err, "rtol": CONSERVATION_RTOL,
        },
        "stragglers": stragglers,
        "critical_spans": critical_spans(payload, k=top),
        "pins": {},
        "pin_skipped": None,
        "tolerance": tolerance,
    }
    from repro.perf.criticalpath import METHOD_DES_FLAGS

    method = meta.get("method")
    needed = ("world_size", "gpus_per_node", "seq_len", "hidden", "n_heads")
    missing = [k for k in needed if meta.get(k) is None]
    pin_ok = True
    if method not in METHOD_DES_FLAGS:
        doc["pin_skipped"] = (
            f"method {method!r} has no ring-family DES pass graph; "
            "bucket attribution only"
        )
    elif missing:
        doc["pin_skipped"] = f"trace metadata missing {missing}"
    else:
        from repro.perf.schedules.attention import AttentionWorkload
        from repro.topology import a800_node, make_cluster

        gpn = int(meta["gpus_per_node"])
        topology = make_cluster(
            int(meta["world_size"]), gpn, node=a800_node(gpn)
        )
        # The SPMD engine computes in float64, so pricing the closed forms
        # at 8 bytes/elem makes healthy observed bytes match them exactly.
        workload = AttentionWorkload(
            seq_len=int(meta["seq_len"]),
            hidden=int(meta["hidden"]),
            n_heads=int(meta["n_heads"]),
            bytes_per_elem=8,
        )
        ring_mode = meta.get("ring_mode", "unidirectional")
        for logical, backward in (("attn-fwd", False), ("attn-bwd", True)):
            pin = _pin_pass(
                payload, method, topology, workload,
                logical=logical, backward=backward,
                ring_mode=ring_mode, tolerance=tolerance,
            )
            doc["pins"][logical] = pin
            pin_ok = pin_ok and pin["ok"]
    straggler_ok = not any(s["stall_s"] > 0 for s in stragglers)
    doc["conservation_ok"] = cons_ok
    doc["pin_ok"] = pin_ok
    doc["straggler_ok"] = straggler_ok
    doc["ok"] = bool(cons_ok and pin_ok and straggler_ok)
    return doc


def validate_attribution_json(doc: str | dict) -> dict:
    """Schema-check an attribution document; raise ``ValueError``."""
    if isinstance(doc, str):
        try:
            doc = json.loads(doc)
        except json.JSONDecodeError as exc:
            raise ValueError(f"attribution JSON is not valid JSON: {exc}")
    if not isinstance(doc, dict):
        raise ValueError("attribution JSON is not an object")
    missing = [k for k in ATTRIBUTION_KEYS if k not in doc]
    if missing:
        raise ValueError(f"attribution JSON missing keys: {missing}")
    if doc["schema"] != ATTRIBUTION_SCHEMA:
        raise ValueError(
            f"attribution JSON has schema {doc['schema']!r}, "
            f"expected {ATTRIBUTION_SCHEMA!r}"
        )
    if not isinstance(doc["ok"], bool):
        raise ValueError("attribution JSON 'ok' is not a bool")
    for key in ("steps", "stragglers", "critical_spans"):
        if not isinstance(doc[key], list):
            raise ValueError(f"attribution JSON {key!r} is not a list")
    if not isinstance(doc["conservation"], dict) or "ok" not in doc["conservation"]:
        raise ValueError("attribution JSON 'conservation' lacks 'ok'")
    if not isinstance(doc["pins"], dict):
        raise ValueError("attribution JSON 'pins' is not an object")
    return doc


def render_attribution(doc: dict[str, Any]) -> str:
    """Plain-text rendering of an attribution document."""
    meta = doc.get("metadata", {})
    lines = [
        "critical-path attribution"
        + (
            f" — method={meta['method']}, world={meta.get('world_size', '?')}"
            f", ring_mode={meta.get('ring_mode', '?')}"
            if meta.get("method") else ""
        )
    ]
    for step in doc["steps"]:
        lines.append(
            f"step {step['step']} (wall {step['wall_us'] / 1e3:.3f} ms):"
        )
        for rank in sorted(step["ranks"], key=lambda r: (r != "all", str(r))):
            b = step["ranks"][rank]
            wall = step["wall_us"] or 1.0
            lines.append(
                f"  rank {rank:<4} compute {b['compute_us'] / wall:6.1%}  "
                f"comm-exposed {b['comm_exposed_us'] / wall:6.1%}  "
                f"overlapped {b['overlapped_us'] / wall:6.1%}  "
                f"idle {b['idle_us'] / wall:6.1%}"
            )
    cons = doc["conservation"]
    lines.append(
        f"conservation: {'OK' if cons['ok'] else 'FAIL'} "
        f"(max rel err {cons['max_rel_err']:.3e}, rtol {cons['rtol']:.0e})"
    )
    if doc.get("pin_skipped"):
        lines.append(f"exposed-comm pin: skipped — {doc['pin_skipped']}")
    for logical, pin in doc.get("pins", {}).items():
        if "error" in pin:
            lines.append(f"  {logical}: FAIL — {pin['error']}")
            continue
        lines.append(
            f"  {logical}: observed exposed-comm frac "
            f"{pin['observed_frac']:.3f} vs predicted "
            f"{pin['predicted_frac']:.3f} over {pin['passes']} pass(es)"
            + (
                f", replay comm {pin['replay_comm_s']:.3e}s vs closed form "
                f"{pin['closed_form_comm_s']:.3e}s"
                if pin.get("closed_form_comm_s") is not None else ""
            )
            + f"  {'OK' if pin['ok'] else 'FAIL'}"
        )
    stallers = [s for s in doc["stragglers"] if s["stall_s"] > 0]
    if stallers:
        lines.append("stragglers (simulated stall seconds):")
        for s in stallers:
            lines.append(
                f"  rank {s['rank']}: stalled {s['stall_s']:.3f}s over "
                f"{s['waits']} wait(s), {s['extensions']} lease extension(s)"
            )
    if doc["critical_spans"]:
        lines.append("top critical spans:")
        for e in doc["critical_spans"]:
            where = f" rank={e['rank']}" if e["rank"] is not None else ""
            lines.append(
                f"  {e['name']:<18} phase={e['phase']}{where} "
                f"cost={e['cost_s']:.3e}s ({e['kind']})"
            )
    lines.append("attribution: " + ("OK" if doc["ok"] else "FAIL"))
    return "\n".join(lines)
