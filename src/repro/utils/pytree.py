"""Minimal pytree utilities for bundles of numpy arrays.

Ring communication in the attention algorithms moves *bundles* of arrays
(e.g. RingAttention's ``(K, V, dK, dV)`` vs BurstAttention's
``(Q, dQ, dO, D, Lse)``).  These helpers let the communicator treat any
nesting of tuples/lists/dicts of arrays uniformly while preserving
structure on the receiving side.

Only three container types are supported on purpose — ``tuple``, ``list``
and ``dict`` (with sorted keys) — which keeps round-tripping unambiguous.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

Leaf = np.ndarray
PyTree = Any


def tree_flatten(tree: PyTree) -> tuple[list[Leaf], Any]:
    """Flatten ``tree`` into a list of leaves and a reconstruction spec."""
    leaves: list[Leaf] = []

    def spec_of(node: PyTree) -> Any:
        if isinstance(node, np.ndarray):
            leaves.append(node)
            return None  # None marks a leaf slot
        if isinstance(node, tuple):
            return ("tuple", [spec_of(x) for x in node])
        if isinstance(node, list):
            return ("list", [spec_of(x) for x in node])
        if isinstance(node, dict):
            keys = sorted(node)
            return ("dict", keys, [spec_of(node[k]) for k in keys])
        raise TypeError(f"unsupported pytree node type: {type(node).__name__}")

    spec = spec_of(tree)
    return leaves, spec


def tree_unflatten(spec: Any, leaves: list[Leaf]) -> PyTree:
    """Rebuild a pytree from ``spec`` and a list of leaves."""
    it = iter(leaves)

    def build(node_spec: Any) -> PyTree:
        if node_spec is None:
            return next(it)
        kind = node_spec[0]
        if kind == "tuple":
            return tuple(build(s) for s in node_spec[1])
        if kind == "list":
            return [build(s) for s in node_spec[1]]
        if kind == "dict":
            _, keys, subspecs = node_spec
            return {k: build(s) for k, s in zip(keys, subspecs)}
        raise TypeError(f"corrupt pytree spec: {node_spec!r}")

    out = build(spec)
    remaining = sum(1 for _ in it)
    if remaining:
        raise ValueError(f"{remaining} unconsumed leaves while unflattening")
    return out


def tree_map(fn: Callable[[Leaf], Leaf], tree: PyTree) -> PyTree:
    """Apply ``fn`` to every array leaf, preserving structure."""
    leaves, spec = tree_flatten(tree)
    return tree_unflatten(spec, [fn(leaf) for leaf in leaves])


def tree_nbytes(tree: PyTree) -> int:
    """Total payload bytes across all leaves."""
    leaves, _ = tree_flatten(tree)
    return sum(leaf.nbytes for leaf in leaves)


def tree_nelems(tree: PyTree) -> int:
    """Total element count across all leaves."""
    leaves, _ = tree_flatten(tree)
    return sum(leaf.size for leaf in leaves)
