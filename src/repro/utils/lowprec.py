"""Low-precision simulation: quantize float64 arrays to the bf16 grid.

The real system trains in bf16; our numerics are float64 so algorithmic
rewrites can be verified exactly.  To check that the *algorithms* are
robust at production precision (online softmax merging, the D-statistic
rewrite, fused-loss tiling), :func:`quantize_bf16` rounds values to the
nearest representable bfloat16 (8-bit mantissa) while keeping float64
storage, and :func:`with_bf16_inputs` runs a kernel under that rounding.
"""

from __future__ import annotations

import numpy as np


def quantize_bf16(x: np.ndarray) -> np.ndarray:
    """Round to the bfloat16 grid (round-to-nearest-even on the top 16
    bits of the float32 representation), returned as float64."""
    f32 = np.asarray(x, dtype=np.float32)
    bits = f32.view(np.uint32)
    # round-to-nearest-even on bit 16
    rounding = ((bits >> 16) & 1).astype(np.uint32) + 0x7FFF
    rounded = (bits + rounding) & np.uint32(0xFFFF0000)
    return rounded.view(np.float32).astype(np.float64)


def bf16_eps() -> float:
    """Machine epsilon of bfloat16: 7 explicit mantissa bits -> 2^-7."""
    return 2.0**-7


def relative_error(a: np.ndarray, b: np.ndarray) -> float:
    """Max elementwise relative error with an absolute floor."""
    denom = np.maximum(np.abs(b), 1e-6)
    return float(np.max(np.abs(a - b) / denom))


def with_bf16_inputs(fn, *arrays, **kwargs):
    """Call ``fn`` on bf16-quantized copies of ``arrays``."""
    return fn(*[quantize_bf16(a) for a in arrays], **kwargs)
