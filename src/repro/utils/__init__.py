"""Small shared utilities (pytrees, formatting, seeding)."""

from repro.utils.pytree import tree_flatten, tree_unflatten, tree_map, tree_nbytes, tree_nelems
from repro.utils.format import format_bytes, format_table

__all__ = [
    "tree_flatten",
    "tree_unflatten",
    "tree_map",
    "tree_nbytes",
    "tree_nelems",
    "format_bytes",
    "format_table",
]
