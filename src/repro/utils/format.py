"""Text formatting helpers for harness output."""

from __future__ import annotations

from typing import Sequence


def format_bytes(nbytes: float) -> str:
    """Human-readable byte count, e.g. ``'1.50 GB'``."""
    value = float(nbytes)
    for unit in ("B", "KB", "MB", "GB", "TB", "PB"):
        if abs(value) < 1000.0 or unit == "PB":
            if unit == "B":
                return f"{value:.0f} {unit}"
            return f"{value:.2f} {unit}"
        value /= 1000.0
    raise AssertionError("unreachable")


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned plain-text table (paper-style results output)."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for j, row in enumerate(cells):
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
        if j == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
