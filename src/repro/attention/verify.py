"""Verification utilities: check any distributed attention method against
the dense reference on a random problem.

Public API used by tests, CI, and downstream users adding new methods::

    from repro.attention.verify import verify_method
    report = verify_method("burst", num_gpus=8, seq_len=128, mask="causal")
    assert report.passed, report.summary()

Also runnable directly::

    python -m repro.attention.verify [method ...]
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field

import numpy as np

from repro.attention import METHOD_REGISTRY, get_method
from repro.kernels import attention_reference, attention_reference_backward
from repro.masks import CausalMask, FullMask, MaskPattern, SlidingWindowMask
from repro.topology import a800_node, make_cluster


MASKS = {
    "full": lambda n: FullMask(),
    "causal": lambda n: CausalMask(),
    "swa": lambda n: SlidingWindowMask(max(2, n // 3)),
}


@dataclass
class VerificationReport:
    """Max absolute errors of one method vs the dense reference."""

    method: str
    mask: str
    errors: dict[str, float] = field(default_factory=dict)
    tolerance: float = 1e-8

    @property
    def passed(self) -> bool:
        return all(e <= self.tolerance for e in self.errors.values())

    def summary(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        parts = ", ".join(f"{k}={v:.2e}" for k, v in self.errors.items())
        return f"[{status}] {self.method} ({self.mask}): {parts}"


def verify_method(
    method_name: str,
    num_gpus: int = 8,
    gpus_per_node: int = 4,
    seq_len: int = 64,
    head_dim: int = 8,
    n_heads: int = 8,
    mask: str = "causal",
    seed: int = 0,
    tolerance: float = 1e-8,
    **method_kwargs,
) -> VerificationReport:
    """Run one method forward+backward and compare against dense math."""
    if mask not in MASKS:
        raise ValueError(f"unknown mask {mask!r}; options: {sorted(MASKS)}")
    topo = make_cluster(num_gpus, node=a800_node(gpus_per_node=gpus_per_node))
    rng = np.random.default_rng(seed)
    shape = (n_heads, seq_len, head_dim)
    q, k, v, do = (rng.normal(size=shape) for _ in range(4))
    pattern: MaskPattern = MASKS[mask](seq_len)

    if method_name == "usp" and "ulysses_degree" not in method_kwargs:
        method_kwargs["ulysses_degree"] = max(
            d for d in range(1, num_gpus + 1)
            if num_gpus % d == 0 and n_heads % d == 0
        )
    method = get_method(method_name, block_size=max(8, seq_len // 8),
                        **method_kwargs)
    res = method.run(topo, q, k, v, mask=pattern, do=do)

    dense = pattern.dense(seq_len)
    o_ref, lse_ref = attention_reference(q, k, v, mask=dense)
    dq_ref, dk_ref, dv_ref = attention_reference_backward(
        q, k, v, o_ref, lse_ref, do, mask=dense
    )
    report = VerificationReport(method=method_name, mask=mask,
                                tolerance=tolerance)
    report.errors = {
        "o": float(np.abs(res.o - o_ref).max()),
        "lse": float(np.abs(res.lse - lse_ref).max()),
        "dq": float(np.abs(res.dq - dq_ref).max()),
        "dk": float(np.abs(res.dk - dk_ref).max()),
        "dv": float(np.abs(res.dv - dv_ref).max()),
    }
    return report


def verify_all(
    methods: list[str] | None = None, masks: list[str] | None = None
) -> list[VerificationReport]:
    """Verify every (method, mask) combination; returns all reports."""
    reports = []
    for name in methods or sorted(METHOD_REGISTRY):
        for mask in masks or sorted(MASKS):
            reports.append(verify_method(name, mask=mask))
    return reports


def main(argv: list[str]) -> int:
    reports = verify_all(methods=argv or None)
    for report in reports:
        print(report.summary())
    return 0 if all(r.passed for r in reports) else 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
