"""Verification utilities: check any distributed attention method against
the dense reference on a random problem.

Public API used by tests, CI, and downstream users adding new methods::

    from repro.attention.verify import verify_method
    report = verify_method("burst", num_gpus=8, seq_len=128, mask="causal")
    assert report.passed, report.summary()

Also runnable directly::

    python -m repro.attention.verify [method ...]

The function doubles as the oracle of the :mod:`repro.testing` harness: the
differential fuzzer feeds it random (method, mask, topology, dtype)
configurations, and the fault-injection meta-tests pass a sabotaged
communicator through ``comm=`` and assert the report catches the damage.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field

import numpy as np

from repro.attention import METHOD_REGISTRY, get_method
from repro.comm import SimCommunicator
from repro.kernels import attention_reference, attention_reference_backward
from repro.masks import CausalMask, FullMask, MaskPattern, SlidingWindowMask
from repro.topology import a800_node, make_cluster
from repro.utils.lowprec import quantize_bf16


MASKS = {
    "full": lambda n: FullMask(),
    "causal": lambda n: CausalMask(),
    "swa": lambda n: SlidingWindowMask(max(2, n // 3)),
}

#: Max-abs-error budget per input dtype.  The simulated methods accumulate
#: in float64 regardless, so the tolerance reflects the rounding of the
#: *inputs* (and of any reference math carried out at input precision):
#: float64 problems agree to ~1e-13, float32 inputs to ~1e-4, and inputs
#: rounded to the bfloat16 grid to ~1e-2.
DTYPE_TOLERANCES = {
    "float64": 1e-8,
    "float32": 1e-3,
    "bfloat16": 5e-2,
}


def resolve_tolerance(dtype: str, tolerance: float | None = None) -> float:
    """Tolerance for ``dtype``, unless an explicit override is given."""
    if tolerance is not None:
        return tolerance
    if dtype not in DTYPE_TOLERANCES:
        raise ValueError(
            f"unknown dtype {dtype!r}; options: {sorted(DTYPE_TOLERANCES)}"
        )
    return DTYPE_TOLERANCES[dtype]


def _cast_inputs(arrays: list[np.ndarray], dtype: str) -> list[np.ndarray]:
    if dtype == "float64":
        return arrays
    if dtype == "float32":
        return [a.astype(np.float32) for a in arrays]
    if dtype == "bfloat16":
        return [quantize_bf16(a) for a in arrays]
    raise ValueError(
        f"unknown dtype {dtype!r}; options: {sorted(DTYPE_TOLERANCES)}"
    )


@dataclass
class VerificationReport:
    """Max absolute errors of one method vs the dense reference."""

    method: str
    mask: str
    errors: dict[str, float] = field(default_factory=dict)
    tolerance: float = 1e-8
    dtype: str = "float64"

    @property
    def passed(self) -> bool:
        return all(e <= self.tolerance for e in self.errors.values())

    def summary(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        parts = ", ".join(f"{k}={v:.2e}" for k, v in self.errors.items())
        return f"[{status}] {self.method} ({self.mask}, {self.dtype}): {parts}"


def verify_method(
    method_name: str,
    num_gpus: int = 8,
    gpus_per_node: int = 4,
    seq_len: int = 64,
    head_dim: int = 8,
    n_heads: int = 8,
    mask: str = "causal",
    seed: int = 0,
    tolerance: float | None = None,
    n_kv_heads: int | None = None,
    dtype: str = "float64",
    comm: SimCommunicator | None = None,
    block_size: int | None = None,
    **method_kwargs,
) -> VerificationReport:
    """Run one method forward+backward and compare against dense math.

    Parameters beyond the original problem shape:

    n_kv_heads:
        When set, K/V are generated with this many heads (GQA); the dense
        reference repeats them per query group and folds the KV gradients
        back.  Supported by the ring-family methods.
    dtype:
        ``"float64"`` (default), ``"float32"``, or ``"bfloat16"`` (inputs
        rounded to the bf16 grid).  ``tolerance=None`` resolves per dtype
        via :data:`DTYPE_TOLERANCES`.
    comm:
        Optional communicator to run the method through — the hook the
        fault-injection harness (:mod:`repro.testing.faults`) uses.  Its
        topology must match ``num_gpus`` / ``gpus_per_node``.
    """
    if mask not in MASKS:
        raise ValueError(f"unknown mask {mask!r}; options: {sorted(MASKS)}")
    tolerance = resolve_tolerance(dtype, tolerance)
    topo = (
        comm.topology
        if comm is not None
        else make_cluster(num_gpus, node=a800_node(gpus_per_node=gpus_per_node))
    )
    if topo.world_size != num_gpus:
        raise ValueError(
            f"comm topology has world size {topo.world_size}, expected {num_gpus}"
        )
    rng = np.random.default_rng(seed)
    if n_kv_heads is not None and (
        n_kv_heads < 1 or n_heads % n_kv_heads != 0
    ):
        raise ValueError(
            f"{n_heads} query heads not divisible by {n_kv_heads} KV heads"
        )
    groups = 1 if n_kv_heads is None else n_heads // n_kv_heads
    kv_heads = n_kv_heads if n_kv_heads is not None else n_heads
    q = rng.normal(size=(n_heads, seq_len, head_dim))
    k = rng.normal(size=(kv_heads, seq_len, head_dim))
    v = rng.normal(size=(kv_heads, seq_len, head_dim))
    do = rng.normal(size=(n_heads, seq_len, head_dim))
    q, k, v, do = _cast_inputs([q, k, v, do], dtype)
    pattern: MaskPattern = MASKS[mask](seq_len)

    if method_name == "usp" and "ulysses_degree" not in method_kwargs:
        method_kwargs["ulysses_degree"] = max(
            d for d in range(1, num_gpus + 1)
            if num_gpus % d == 0 and n_heads % d == 0
        )
    if block_size is None:
        block_size = max(8, seq_len // 8)
    method = get_method(method_name, block_size=block_size, **method_kwargs)
    res = method.run(topo, q, k, v, mask=pattern, do=do, comm=comm)

    from repro.attention.gqa import fold_kv_grad, repeat_kv

    dense = pattern.dense(seq_len)
    k_full, v_full = repeat_kv(k, groups), repeat_kv(v, groups)
    o_ref, lse_ref = attention_reference(q, k_full, v_full, mask=dense)
    dq_ref, dk_ref, dv_ref = attention_reference_backward(
        q, k_full, v_full, o_ref, lse_ref, do, mask=dense
    )
    dk_ref = fold_kv_grad(dk_ref, groups)
    dv_ref = fold_kv_grad(dv_ref, groups)
    report = VerificationReport(method=method_name, mask=mask,
                                tolerance=tolerance, dtype=dtype)
    report.errors = {
        "o": float(np.abs(res.o - o_ref).max()),
        "lse": float(np.abs(res.lse - lse_ref).max()),
        "dq": float(np.abs(res.dq - dq_ref).max()),
        "dk": float(np.abs(res.dk - dk_ref).max()),
        "dv": float(np.abs(res.dv - dv_ref).max()),
    }
    return report


def verify_all(
    methods: list[str] | None = None, masks: list[str] | None = None
) -> list[VerificationReport]:
    """Verify every (method, mask) combination; returns all reports."""
    reports = []
    for name in methods or sorted(METHOD_REGISTRY):
        for mask in masks or sorted(MASKS):
            reports.append(verify_method(name, mask=mask))
    return reports


def main(argv: list[str]) -> int:
    reports = verify_all(methods=argv or None)
    for report in reports:
        print(report.summary())
    return 0 if all(r.passed for r in reports) else 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
