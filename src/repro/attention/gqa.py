"""Grouped-query attention (GQA) support and the backward-payload
trade-off it creates.

Modern LLaMA-family models share each K/V head across a *group* of query
heads (e.g. 8 query heads per KV head), shrinking the KV tensors by the
group factor.  This changes BurstAttention's communication arithmetic in
an interesting way the paper does not explore:

* Algorithm 1 circulates ``(K, V, dK, dV)`` — all KV-sized, so its
  backward volume shrinks to ``4 N d / g`` with group factor ``g``;
* Algorithm 2 circulates ``(Q, dQ, dO, D, Lse)`` — all *query*-sized, so
  its ``3 N d + 2 N h_q`` volume does not shrink at all.

The crossover is at ``g = 4/3``: for any real GQA model (g >= 2), the
"unoptimised" Algorithm 1 moves **less** data than BurstAttention's
rewrite.  :func:`choose_backward_algorithm` implements the resulting
adaptive selection, and :func:`backward_comm_elems` exposes the closed
forms the extension benchmark (``bench_ext_gqa.py``) sweeps.

Numerics: :func:`gqa_attention_reference` is the dense oracle;
:class:`GQADistributedAttention` wraps the ring-family machinery with
KV-head expansion on compute and group-summed KV gradients, circulating
only the *small* KV tensors.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.attention.burst import burst_attention_backward
from repro.attention.ring import (
    _resolve_tiles,
    ring_attention_forward,
)
from repro.comm import BidirectionalFlow, RingSchedule, SimCommunicator
from repro.comm.ring import check_ring_mode
from repro.kernels import (
    BiasTileCache,
    KernelWorkspace,
    attention_reference,
    attention_reference_backward,
    get_backend,
)
from repro.masks import MaskPattern


def repeat_kv(x: np.ndarray, groups: int) -> np.ndarray:
    """Expand ``(H_kv, S, D)`` to ``(H_kv * groups, S, D)`` by repeating
    each KV head for its query group (exact GQA semantics)."""
    if groups == 1:
        return x
    return np.repeat(x, groups, axis=0)


def fold_kv_grad(dx: np.ndarray, groups: int) -> np.ndarray:
    """Sum per-query-head KV gradients back to ``(H_kv, S, D)``."""
    if groups == 1:
        return dx
    h, s, d = dx.shape
    return dx.reshape(h // groups, groups, s, d).sum(axis=1)


def _check_groups(n_q_heads: int, n_kv_heads: int) -> int:
    if n_kv_heads < 1 or n_q_heads % n_kv_heads != 0:
        raise ValueError(
            f"{n_q_heads} query heads not divisible by {n_kv_heads} KV heads"
        )
    return n_q_heads // n_kv_heads


def gqa_attention_reference(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    mask: np.ndarray | None = None,
    scale: float | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Dense GQA oracle: ``q`` is ``(H_q, S, D)``, ``k``/``v`` are
    ``(H_kv, S, D)``.  Returns ``(o, lse)`` shaped like ``q``."""
    groups = _check_groups(q.shape[0], k.shape[0])
    return attention_reference(q, repeat_kv(k, groups), repeat_kv(v, groups),
                               mask=mask, scale=scale)


def gqa_attention_reference_backward(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    o: np.ndarray,
    lse: np.ndarray,
    do: np.ndarray,
    mask: np.ndarray | None = None,
    scale: float | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Dense GQA backward: ``dk``/``dv`` come back KV-head shaped."""
    groups = _check_groups(q.shape[0], k.shape[0])
    dq, dk, dv = attention_reference_backward(
        q, repeat_kv(k, groups), repeat_kv(v, groups), o, lse, do,
        mask=mask, scale=scale,
    )
    return dq, fold_kv_grad(dk, groups), fold_kv_grad(dv, groups)


# --- communication arithmetic -------------------------------------------------


def backward_comm_elems(
    algorithm: str, seq_len: int, head_dim: int, n_q_heads: int,
    n_kv_heads: int,
) -> float:
    """Per-GPU backward send volume in elements (both algorithms).

    * Algorithm 1: ``4 * N * h_kv * d`` (K, V, dK, dV are KV-sized).
    * Algorithm 2: ``3 * N * h_q * d + 2 * N * h_q`` (Q-sized bundle).
    """
    if algorithm == "alg1":
        return 4.0 * seq_len * n_kv_heads * head_dim
    if algorithm == "alg2":
        return seq_len * n_q_heads * (3.0 * head_dim + 2.0)
    raise ValueError(f"unknown algorithm {algorithm!r}")


def choose_backward_algorithm(
    head_dim: int, n_q_heads: int, n_kv_heads: int
) -> str:
    """Adaptive selection: pick the cheaper backward payload.

    For MHA (``n_kv_heads == n_q_heads``) this returns ``"alg2"`` — the
    paper's 25 % saving.  For GQA with group factor >= 2 it returns
    ``"alg1"``: circulating the small KV tensors beats circulating the
    full-width query bundle.
    """
    _check_groups(n_q_heads, n_kv_heads)
    alg1 = backward_comm_elems("alg1", 1, head_dim, n_q_heads, n_kv_heads)
    alg2 = backward_comm_elems("alg2", 1, head_dim, n_q_heads, n_kv_heads)
    return "alg1" if alg1 <= alg2 else "alg2"


# --- distributed numerics -----------------------------------------------------


def gqa_ring_backward_kv(
    comm: SimCommunicator,
    schedule: RingSchedule,
    qs: Sequence[np.ndarray],
    ks: Sequence[np.ndarray],
    vs: Sequence[np.ndarray],
    os: Sequence[np.ndarray],
    lses: Sequence[np.ndarray],
    dos: Sequence[np.ndarray],
    idxs: Sequence[np.ndarray],
    groups: int,
    mask: MaskPattern | None = None,
    scale: float | None = None,
    *,
    phase: str = "attn-bwd",
    block_size: int = 128,
    ring_mode: str = "unidirectional",
) -> tuple[list[np.ndarray], list[np.ndarray], list[np.ndarray]]:
    """Algorithm 1 with GQA: the circulating ``(K, V, dK, dV)`` bundle
    stays KV-head sized (the whole point); expansion to query heads
    happens only inside the local kernel.  ``ring_mode="bidirectional"``
    splits KV delivery across counter-rotating streams exactly as in
    :func:`repro.attention.ring.ring_attention_backward_kv`."""
    check_ring_mode(ring_mode)
    g = comm.world_size
    if scale is None:
        scale = 1.0 / np.sqrt(qs[0].shape[-1])
    origins = schedule.origins()
    steps = schedule.num_steps

    dqs = [np.zeros_like(q) for q in qs]
    bias_cache = BiasTileCache()
    workspace = KernelWorkspace()
    bufs: list[object] = [
        (ks[r].copy(), vs[r].copy(), np.zeros_like(ks[r]), np.zeros_like(vs[r]))
        for r in range(g)
    ]
    flow = (
        BidirectionalFlow(
            comm, schedule, [(bufs[r][0], bufs[r][1]) for r in range(g)],
            phase=phase, tag="gqa-kv+grads",
        )
        if ring_mode == "bidirectional"
        else None
    )
    ro: list[object] | None = None
    for t in range(steps):
        for r in range(g):
            j = origins[t][r]
            k_j, v_j = ro[r] if ro is not None else bufs[r][:2]
            dk_j, dv_j = bufs[r][-2], bufs[r][-1]
            skip, plan, tile, bias = _resolve_tiles(
                mask, idxs[r], idxs[j], block_size, bias_cache
            )
            if skip:
                continue
            dq_part, dk_part, dv_part = get_backend().flash_backward(
                qs[r], repeat_kv(k_j, groups), repeat_kv(v_j, groups),
                os[r], lses[r], dos[r], mask=tile, scale=scale,
                block_q=block_size, block_k=block_size,
                bias=bias, plan=plan, workspace=workspace,
            )
            dqs[r] += dq_part
            dk_j = dk_j + fold_kv_grad(dk_part, groups)
            dv_j = dv_j + fold_kv_grad(dv_part, groups)
            if len(bufs[r]) == 4:
                bufs[r] = (k_j, v_j, dk_j, dv_j)
            else:
                bufs[r] = (dk_j, dv_j)
        if t < steps - 1:
            if flow is not None and t == flow.forward_transitions:
                bufs = [b[-2:] for b in bufs]
            bufs = schedule.apply(comm, bufs, t, phase=phase, tag="gqa-kv+grads")
            if flow is not None:
                flow.poststep(t)
                ro = flow.delivered(t + 1)
    if flow is not None:
        bufs = [b[-2:] for b in bufs]
    bufs = comm.exchange(
        bufs, schedule.return_permutation(), phase=phase, tag="gqa-kv-return"
    )
    dks = [bufs[r][-2] for r in range(g)]
    dvs = [bufs[r][-1] for r in range(g)]
    return dqs, dks, dvs


def gqa_ring_forward(
    comm: SimCommunicator,
    schedule: RingSchedule,
    qs: Sequence[np.ndarray],
    ks: Sequence[np.ndarray],
    vs: Sequence[np.ndarray],
    idxs: Sequence[np.ndarray],
    groups: int,
    mask: MaskPattern | None = None,
    scale: float | None = None,
    *,
    phase: str = "attn-fwd",
    block_size: int = 128,
    ring_mode: str = "unidirectional",
) -> tuple[list[np.ndarray], list[np.ndarray]]:
    """Ring forward circulating KV-head-sized buffers.

    Mirrors :func:`repro.attention.ring_attention_forward` but the
    expansion to query heads happens locally, after communication.
    """
    from repro.kernels.softmax import NEG_INF, merge_states

    check_ring_mode(ring_mode)
    g = comm.world_size
    if scale is None:
        scale = 1.0 / np.sqrt(qs[0].shape[-1])
    origins = schedule.origins()
    steps = schedule.num_steps
    os = [
        np.zeros(q.shape[:-1] + (vs[i].shape[-1],), dtype=np.float64)
        for i, q in enumerate(qs)
    ]
    lses = [np.full(q.shape[:-1], NEG_INF, dtype=np.float64) for q in qs]
    bias_cache = BiasTileCache()
    workspace = KernelWorkspace()
    bufs: list[object] = [(ks[r].copy(), vs[r].copy()) for r in range(g)]
    flow = (
        BidirectionalFlow(comm, schedule, bufs, phase=phase, tag="gqa-kv")
        if ring_mode == "bidirectional"
        else None
    )
    cur = bufs
    for t in range(steps):
        for r in range(g):
            j = origins[t][r]
            k_j, v_j = cur[r]
            skip, plan, tile, bias = _resolve_tiles(
                mask, idxs[r], idxs[j], block_size, bias_cache
            )
            if skip:
                continue
            o_part, lse_part = get_backend().flash_forward(
                qs[r], repeat_kv(k_j, groups), repeat_kv(v_j, groups),
                mask=tile, scale=scale, block_q=block_size, block_k=block_size,
                bias=bias, plan=plan, workspace=workspace,
            )
            os[r], lses[r] = merge_states(os[r], lses[r], o_part, lse_part)
        if t < steps - 1:
            if flow is None:
                bufs = schedule.apply(comm, bufs, t, phase=phase, tag="gqa-kv")
                cur = bufs
            else:
                if t < flow.forward_transitions:
                    bufs = schedule.apply(comm, bufs, t, phase=phase, tag="gqa-kv")
                flow.poststep(t)
                delivered = flow.delivered(t + 1)
                cur = delivered if delivered is not None else bufs
    return os, lses


def gqa_burst_backward(
    comm: SimCommunicator,
    schedule: RingSchedule,
    qs, ks, vs, os, lses, dos, idxs,
    groups: int,
    mask: MaskPattern | None = None,
    scale: float | None = None,
    *,
    phase: str = "attn-bwd",
    block_size: int = 128,
    ring_mode: str = "unidirectional",
):
    """Algorithm 2 under GQA: the circulating bundle is query-sized (no
    saving from GQA); KV tensors are expanded locally on the pinned side
    and their gradients folded back to KV heads."""
    expanded_k = [repeat_kv(k, groups) for k in ks]
    expanded_v = [repeat_kv(v, groups) for v in vs]
    dqs, dks, dvs = burst_attention_backward(
        comm, schedule, qs, expanded_k, expanded_v, os, lses, dos, idxs,
        mask=mask, scale=scale, phase=phase, block_size=block_size,
        ring_mode=ring_mode,
    )
    dks = [fold_kv_grad(dk, groups) for dk in dks]
    dvs = [fold_kv_grad(dv, groups) for dv in dvs]
    return dqs, dks, dvs
