"""DeepSpeed-Ulysses head parallelism.

Instead of circulating KV shards, Ulysses re-partitions the data with
all-to-all collectives: starting from sequence-sharded ``(H, N/G, D)``
tensors, each rank exchanges chunks so it ends up holding *all* ``N``
tokens for ``H/G`` of the heads, runs ordinary (full-sequence) local
attention, and all-to-alls the outputs back to sequence sharding.

Communication per rank is ``4 · (N/G) · d · (G-1)/G`` elements per pass —
asymptotically ``G×`` cheaper than ring methods — but the all-to-all
cannot be overlapped with attention compute (the compute cannot start
until the collective completes), and the method is *infeasible whenever
the head count is not divisible by the GPU count* (the paper's 14B model
has 40 heads, so Ulysses cannot run on 64 GPUs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.comm import SimCommunicator
from repro.kernels import (
    BiasTileCache,
    KernelWorkspace,
    TilePlan,
    get_backend,
    planning_enabled,
)
from repro.masks import MaskPattern
from repro.obs.tracer import traced


def _check_contiguous(idxs: Sequence[np.ndarray]) -> None:
    """Ulysses reassembles the sequence by concatenating rank shards in
    rank order, which requires a contiguous ascending partition."""
    expect = 0
    for r, idx in enumerate(idxs):
        if idx[0] != expect or not np.array_equal(
            idx, np.arange(idx[0], idx[0] + len(idx))
        ):
            raise ValueError(
                f"Ulysses requires a contiguous partition; rank {r} shard "
                "is not a contiguous ascending range"
            )
        expect = int(idx[-1]) + 1


@dataclass
class UlyssesContext:
    """State saved between the forward and backward passes (head layout)."""

    q_h: list[np.ndarray]
    k_h: list[np.ndarray]
    v_h: list[np.ndarray]
    o_h: list[np.ndarray]
    lse_h: list[np.ndarray]
    seq_sizes: list[int]
    heads_per_rank: int
    mask_dense: np.ndarray | None
    scale: float
    block_size: int
    bias_slices: list | None = None  # per-rank head slice of the ALiBi bias
    plans: list[TilePlan] | None = None  # per-rank full-sequence tile plans


def _split_heads(x: np.ndarray, g: int) -> list[np.ndarray]:
    h = x.shape[0]
    hh = h // g
    return [x[i * hh : (i + 1) * hh] for i in range(g)]


@traced("attn.pass", "attn", algorithm="ulysses", direction="fwd")
def ulysses_attention_forward(
    comm: SimCommunicator,
    qs: Sequence[np.ndarray],
    ks: Sequence[np.ndarray],
    vs: Sequence[np.ndarray],
    idxs: Sequence[np.ndarray],
    mask: MaskPattern | None = None,
    scale: float | None = None,
    *,
    phase: str = "attn-fwd",
    block_size: int = 128,
) -> tuple[list[np.ndarray], list[np.ndarray], UlyssesContext]:
    """Ulysses forward: seq→head all-to-all, local attention, head→seq.

    Shards must be ``(H, S/G, D)`` with ``H`` divisible by the world size.
    Returns per-rank ``(os, lses)`` in the original sequence sharding plus
    the context for :func:`ulysses_attention_backward`.
    """
    g = comm.world_size
    h = qs[0].shape[0]
    if h % g != 0:
        raise ValueError(
            f"DeepSpeed-Ulysses infeasible: {h} heads not divisible by "
            f"{g} GPUs (the paper hits this with 40 heads on 64 GPUs)"
        )
    if ks[0].shape[0] != h:
        raise ValueError(
            "Ulysses head parallelism requires equal query/KV head counts; "
            f"got {h} vs {ks[0].shape[0]} (GQA is a ring-family feature)"
        )
    if scale is None:
        scale = 1.0 / np.sqrt(qs[0].shape[-1])
    _check_contiguous(idxs)
    seq_sizes = [q.shape[-2] for q in qs]
    n = sum(seq_sizes)

    # seq-shard -> head-shard: rank r sends head-chunk h to rank h.
    chunks = [
        [
            (qc, kc, vc)
            for qc, kc, vc in zip(
                _split_heads(qs[r], g), _split_heads(ks[r], g), _split_heads(vs[r], g)
            )
        ]
        for r in range(g)
    ]
    received = comm.all_to_all(chunks, phase=phase, tag="ulysses-qkv")
    q_h, k_h, v_h = [], [], []
    for r in range(g):
        q_h.append(np.concatenate([received[r][s][0] for s in range(g)], axis=-2))
        k_h.append(np.concatenate([received[r][s][1] for s in range(g)], axis=-2))
        v_h.append(np.concatenate([received[r][s][2] for s in range(g)], axis=-2))

    mask_dense = None
    bias_slices = None
    plans = None
    hh = h // g
    if mask is not None:
        idx = np.arange(n)
        # Validate per-head bias geometry from a 1x1 probe tile — the full
        # (H, N, N) bias is never materialised on the plan path.
        probe = mask.bias_block(idx[:1], idx[:1])
        if probe is not None and (probe.ndim != 3 or probe.shape[0] != h):
            raise ValueError(
                "Ulysses needs a per-head bias matching the head count"
            )
        if planning_enabled():
            # All ranks see the same full-sequence tile grid and bias
            # cache; each views its own head group of the bias tiles.
            base = TilePlan.build(
                mask, idx, idx, block_size, block_size,
                bias_cache=BiasTileCache(),
            )
            plans = [
                base.with_head_slice(slice(r * hh, (r + 1) * hh))
                for r in range(g)
            ]
        else:
            mask_dense = mask.dense(n)
            bias_full = mask.bias_block(idx, idx)
            if bias_full is not None:
                bias_slices = [
                    bias_full[r * hh : (r + 1) * hh] for r in range(g)
                ]
    workspace = KernelWorkspace()
    o_h, lse_h = [], []
    for r in range(g):
        o, lse = get_backend().flash_forward(
            q_h[r], k_h[r], v_h[r], mask=mask_dense, scale=scale,
            block_q=block_size, block_k=block_size,
            bias=None if bias_slices is None else bias_slices[r],
            plan=None if plans is None else plans[r],
            workspace=workspace,
        )
        o_h.append(o)
        lse_h.append(lse)

    # head-shard -> seq-shard for the outputs (and lse for completeness).
    bounds = np.cumsum([0] + seq_sizes)
    out_chunks = [
        [
            (o_h[r][:, bounds[d] : bounds[d + 1], :], lse_h[r][:, bounds[d] : bounds[d + 1]])
            for d in range(g)
        ]
        for r in range(g)
    ]
    received_o = comm.all_to_all(out_chunks, phase=phase, tag="ulysses-out")
    os_out, lses_out = [], []
    for r in range(g):
        os_out.append(np.concatenate([received_o[r][s][0] for s in range(g)], axis=0))
        lses_out.append(np.concatenate([received_o[r][s][1] for s in range(g)], axis=0))

    ctx = UlyssesContext(
        q_h=q_h, k_h=k_h, v_h=v_h, o_h=o_h, lse_h=lse_h,
        seq_sizes=seq_sizes, heads_per_rank=h // g,
        mask_dense=mask_dense, scale=scale, block_size=block_size,
        bias_slices=bias_slices, plans=plans,
    )
    return os_out, lses_out, ctx


@traced("attn.pass", "attn", algorithm="ulysses", direction="bwd")
def ulysses_attention_backward(
    comm: SimCommunicator,
    ctx: UlyssesContext,
    dos: Sequence[np.ndarray],
    *,
    phase: str = "attn-bwd",
) -> tuple[list[np.ndarray], list[np.ndarray], list[np.ndarray]]:
    """Ulysses backward: dO to head layout, local backward, grads back."""
    g = len(dos)
    chunks = [[_split_heads(dos[r], g)[d] for d in range(g)] for r in range(g)]
    received = comm.all_to_all(chunks, phase=phase, tag="ulysses-dout")
    do_h = [
        np.concatenate([received[r][s] for s in range(g)], axis=-2) for r in range(g)
    ]

    dq_h, dk_h, dv_h = [], [], []
    workspace = KernelWorkspace()
    for r in range(g):
        dq, dk, dv = get_backend().flash_backward(
            ctx.q_h[r], ctx.k_h[r], ctx.v_h[r], ctx.o_h[r], ctx.lse_h[r],
            do_h[r], mask=ctx.mask_dense, scale=ctx.scale,
            block_q=ctx.block_size, block_k=ctx.block_size,
            bias=None if ctx.bias_slices is None else ctx.bias_slices[r],
            plan=None if ctx.plans is None else ctx.plans[r],
            workspace=workspace,
        )
        dq_h.append(dq)
        dk_h.append(dk)
        dv_h.append(dv)

    bounds = np.cumsum([0] + ctx.seq_sizes)
    grad_chunks = [
        [
            (
                dq_h[r][:, bounds[d] : bounds[d + 1], :],
                dk_h[r][:, bounds[d] : bounds[d + 1], :],
                dv_h[r][:, bounds[d] : bounds[d + 1], :],
            )
            for d in range(g)
        ]
        for r in range(g)
    ]
    received_g = comm.all_to_all(grad_chunks, phase=phase, tag="ulysses-grads")
    dqs, dks, dvs = [], [], []
    for r in range(g):
        dqs.append(np.concatenate([received_g[r][s][0] for s in range(g)], axis=0))
        dks.append(np.concatenate([received_g[r][s][1] for s in range(g)], axis=0))
        dvs.append(np.concatenate([received_g[r][s][2] for s in range(g)], axis=0))
    return dqs, dks, dvs


def ulysses_attention(
    comm: SimCommunicator,
    qs: Sequence[np.ndarray],
    ks: Sequence[np.ndarray],
    vs: Sequence[np.ndarray],
    idxs: Sequence[np.ndarray],
    mask: MaskPattern | None = None,
    scale: float | None = None,
    dos: Sequence[np.ndarray] | None = None,
    *,
    block_size: int = 128,
) -> dict:
    """One-call convenience wrapper: forward, and backward when ``dos``
    is given.  Returns a dict with ``os``, ``lses`` and (optionally)
    ``dqs/dks/dvs``."""
    os_out, lses_out, ctx = ulysses_attention_forward(
        comm, qs, ks, vs, idxs, mask, scale, block_size=block_size
    )
    result = {"os": os_out, "lses": lses_out}
    if dos is not None:
        dqs, dks, dvs = ulysses_attention_backward(comm, ctx, dos)
        result.update({"dqs": dqs, "dks": dks, "dvs": dvs})
    return result
