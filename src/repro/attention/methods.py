"""Uniform facade over the five distributed attention systems.

Each method bundles a partitioner, a communication schedule, and forward /
backward algorithms behind one interface, so the engine, the tests, and the
benchmarks can swap systems with a string name:

=====================  ============  ==============  ===========  ==========
name                   partition     schedule        backward     heads req.
=====================  ============  ==============  ===========  ==========
``megatron-cp``        zigzag        flat ring       Alg. 1       —
``loongtrain-double``  zigzag        double ring     Alg. 1       —
``burst``              striped*      double ring     Alg. 2       —
``ulysses``            contiguous    all-to-all      local        H % G == 0
``usp``                zigzag(ring)  a2a + ring      Alg. 1       H % u == 0
=====================  ============  ==============  ===========  ==========

(*) The paper's pilot experiments found striped integration slightly better
for BurstEngine; zigzag is available via the ``partitioner`` argument.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from repro.attention.burst import burst_attention_backward
from repro.attention.ring import ring_attention_backward_kv, ring_attention_forward
from repro.attention.ulysses import ulysses_attention_backward, ulysses_attention_forward
from repro.attention.usp import USPGrid, usp_attention_backward, usp_attention_forward
from repro.comm import (
    SimCommunicator,
    double_ring_schedule,
    global_ring_schedule,
)
from repro.comm.ring import check_ring_mode
from repro.masks import MaskPattern
from repro.partition import (
    ContiguousPartitioner,
    Partitioner,
    StripedPartitioner,
    ZigzagPartitioner,
)
from repro.topology import ClusterTopology


@dataclass
class AttentionResult:
    """Outputs of a full distributed attention pass on full arrays."""

    o: np.ndarray
    lse: np.ndarray
    dq: np.ndarray | None = None
    dk: np.ndarray | None = None
    dv: np.ndarray | None = None
    comm: SimCommunicator | None = None

    @property
    def traffic(self):
        return self.comm.log if self.comm is not None else None


class DistributedAttention(ABC):
    """Base class: scatter full arrays, run the distributed pass, gather."""

    name: str = "base"
    supports_context_rebuild = False

    def __init__(self, partitioner: Partitioner, block_size: int = 128):
        self.partitioner = partitioner
        self.block_size = block_size

    # -- shard-level API (used by the engine) --------------------------------

    @abstractmethod
    def forward_shards(self, comm, qs, ks, vs, idxs, mask, scale):
        """Run the forward pass on shards; returns ``(os, lses, ctx)``."""

    @abstractmethod
    def backward_shards(self, comm, ctx, dos):
        """Run the backward pass; returns ``(dqs, dks, dvs)``."""

    # -- full-array convenience API ------------------------------------------

    def shard(self, x: np.ndarray, g: int) -> list[np.ndarray]:
        return self.partitioner.scatter(x, g, axis=-2)

    def indices(self, n: int, g: int) -> list[np.ndarray]:
        return self.partitioner.indices(n, g)

    def run(
        self,
        topology: ClusterTopology,
        q: np.ndarray,
        k: np.ndarray,
        v: np.ndarray,
        mask: MaskPattern | None = None,
        do: np.ndarray | None = None,
        scale: float | None = None,
        comm: SimCommunicator | None = None,
    ) -> AttentionResult:
        """Execute a full pass on unsharded ``(H, N, D)`` (or ``(N, D)``)
        arrays and gather the results back; ``do`` triggers the backward
        pass as well."""
        if comm is None:
            comm = SimCommunicator(topology)
        g = topology.world_size
        n = q.shape[-2]
        idxs = self.indices(n, g)
        qs, ks, vs = self.shard(q, g), self.shard(k, g), self.shard(v, g)
        os, lses, ctx = self.forward_shards(comm, qs, ks, vs, idxs, mask, scale)
        result = AttentionResult(
            o=self.partitioner.gather(os, axis=-2),
            lse=self.partitioner.gather(
                [l[..., None] for l in lses], axis=-2
            )[..., 0],
            comm=comm,
        )
        if do is not None:
            dos = self.shard(do, g)
            dqs, dks, dvs = self.backward_shards(comm, ctx, dos)
            result.dq = self.partitioner.gather(dqs, axis=-2)
            result.dk = self.partitioner.gather(dks, axis=-2)
            result.dv = self.partitioner.gather(dvs, axis=-2)
        return result


@dataclass
class _RingContext:
    schedule: object
    qs: list
    ks: list
    vs: list
    os: list
    lses: list
    idxs: list
    mask: MaskPattern | None
    scale: float | None
    groups: int = 1


class _RingFamilyMethod(DistributedAttention):
    """Common scaffolding for flat-ring / double-ring methods.

    All ring-family methods accept ``ring_mode``: ``"unidirectional"``
    (default) or ``"bidirectional"`` (counter-rotating delivery streams,
    bitwise-identical results — see :mod:`repro.comm.ring`).
    """

    backward_algorithm: str = "alg1"
    ring_mode: str = "unidirectional"
    #: Ring-family backward needs only (q, k, v, o, lse) shards, so a
    #: backward context can be rebuilt from full arrays — this is what lets
    #: checkpoint policies skip the distributed forward on recomputation.
    supports_context_rebuild = True

    def make_context(self, comm, qs, ks, vs, os, lses, idxs, mask, scale):
        """Rebuild the backward context from shards (no communication)."""
        return _RingContext(
            self._schedule(comm.topology), list(qs), list(ks), list(vs),
            list(os), list(lses), list(idxs), mask, scale,
            self._groups_of(qs, ks),
        )

    def _schedule(self, topology: ClusterTopology):
        raise NotImplementedError

    @staticmethod
    def _groups_of(qs, ks) -> int:
        hq = qs[0].shape[0] if qs[0].ndim == 3 else 1
        hkv = ks[0].shape[0] if ks[0].ndim == 3 else 1
        if hq == hkv:
            return 1
        if hkv == 0 or hq % hkv != 0:
            raise ValueError(
                f"{hq} query heads not divisible by {hkv} KV heads"
            )
        return hq // hkv

    def _resolve_backward(self, groups: int, head_dim: int, n_q_heads: int) -> str:
        if self.backward_algorithm != "adaptive":
            return self.backward_algorithm
        from repro.attention.gqa import choose_backward_algorithm

        return choose_backward_algorithm(
            head_dim, n_q_heads, n_q_heads // groups
        )

    def forward_shards(self, comm, qs, ks, vs, idxs, mask, scale):
        schedule = self._schedule(comm.topology)
        groups = self._groups_of(qs, ks)
        if groups == 1:
            os, lses = ring_attention_forward(
                comm, schedule, qs, ks, vs, idxs, mask=mask, scale=scale,
                block_size=self.block_size, ring_mode=self.ring_mode,
            )
        else:
            from repro.attention.gqa import gqa_ring_forward

            os, lses = gqa_ring_forward(
                comm, schedule, qs, ks, vs, idxs, groups, mask=mask,
                scale=scale, block_size=self.block_size,
                ring_mode=self.ring_mode,
            )
        ctx = _RingContext(schedule, list(qs), list(ks), list(vs), os, lses,
                           list(idxs), mask, scale, groups)
        return os, lses, ctx

    def backward_shards(self, comm, ctx, dos):
        groups = ctx.groups
        algorithm = self._resolve_backward(
            groups, ctx.qs[0].shape[-1],
            ctx.qs[0].shape[0] if ctx.qs[0].ndim == 3 else 1,
        )
        if groups > 1:
            from repro.attention.gqa import gqa_burst_backward, gqa_ring_backward_kv

            fn = gqa_burst_backward if algorithm == "alg2" else gqa_ring_backward_kv
            return fn(
                comm, ctx.schedule, ctx.qs, ctx.ks, ctx.vs, ctx.os, ctx.lses,
                dos, ctx.idxs, groups, mask=ctx.mask, scale=ctx.scale,
                block_size=self.block_size, ring_mode=self.ring_mode,
            )
        backward = (
            burst_attention_backward
            if algorithm == "alg2"
            else ring_attention_backward_kv
        )
        return backward(
            comm, ctx.schedule, ctx.qs, ctx.ks, ctx.vs, ctx.os, ctx.lses,
            dos, ctx.idxs, mask=ctx.mask, scale=ctx.scale,
            block_size=self.block_size, ring_mode=self.ring_mode,
        )


class RingAttentionMethod(_RingFamilyMethod):
    """Megatron-CP: flat global ring, Algorithm 1, zigzag balance."""

    name = "megatron-cp"

    def __init__(
        self,
        partitioner: Partitioner | None = None,
        block_size: int = 128,
        ring_mode: str = "unidirectional",
    ):
        super().__init__(partitioner or ZigzagPartitioner(), block_size)
        check_ring_mode(ring_mode)
        self.ring_mode = ring_mode

    def _schedule(self, topology):
        return global_ring_schedule(topology)


class DoubleRingMethod(_RingFamilyMethod):
    """LoongTrain-DoubleRing: two-level ring, Algorithm 1, zigzag balance."""

    name = "loongtrain-double"

    def __init__(
        self,
        partitioner: Partitioner | None = None,
        block_size: int = 128,
        ring_mode: str = "unidirectional",
    ):
        super().__init__(partitioner or ZigzagPartitioner(), block_size)
        check_ring_mode(ring_mode)
        self.ring_mode = ring_mode

    def _schedule(self, topology):
        return double_ring_schedule(topology)


class BurstAttentionMethod(_RingFamilyMethod):
    """BurstAttention: topology-aware double ring + Algorithm 2 backward.

    Defaults to striped workload balance (the paper's best-performing
    integration); pass ``ZigzagPartitioner()`` to reproduce the zigzag
    variant of the ablation.
    """

    name = "burst"
    backward_algorithm = "alg2"

    def __init__(
        self,
        partitioner: Partitioner | None = None,
        block_size: int = 128,
        adaptive_backward: bool = False,
        ring_mode: str = "unidirectional",
    ):
        super().__init__(partitioner or StripedPartitioner(), block_size)
        check_ring_mode(ring_mode)
        self.ring_mode = ring_mode
        if adaptive_backward:
            # GQA extension: pick Alg. 1 when grouped KV heads make the
            # circulating KV bundle cheaper than the query-sized one.
            self.backward_algorithm = "adaptive"

    def _schedule(self, topology):
        return double_ring_schedule(topology)


class UlyssesMethod(DistributedAttention):
    """DeepSpeed-Ulysses head parallelism (all-to-all)."""

    name = "ulysses"

    def __init__(self, block_size: int = 128):
        super().__init__(ContiguousPartitioner(), block_size)

    def forward_shards(self, comm, qs, ks, vs, idxs, mask, scale):
        return ulysses_attention_forward(
            comm, qs, ks, vs, idxs, mask=mask, scale=scale,
            block_size=self.block_size,
        )

    def backward_shards(self, comm, ctx, dos):
        return ulysses_attention_backward(comm, ctx, dos)


class USPMethod(DistributedAttention):
    """LoongTrain-USP hybrid head+context parallelism.

    ``ulysses_degree`` sets the head-parallel width ``u``; the ring width is
    ``G / u``.  The sequence is partitioned over ring positions with the
    ring partitioner (zigzag by default) and each ring shard is subdivided
    contiguously among the Ulysses peers.
    """

    name = "usp"

    def __init__(
        self,
        ulysses_degree: int,
        ring_partitioner: Partitioner | None = None,
        block_size: int = 128,
        use_burst_backward: bool = False,
    ):
        super().__init__(ring_partitioner or ZigzagPartitioner(), block_size)
        self.ulysses_degree = ulysses_degree
        self.use_burst_backward = use_burst_backward

    def _grid(self, g: int) -> USPGrid:
        if g % self.ulysses_degree != 0:
            raise ValueError(
                f"world size {g} not divisible by ulysses degree "
                f"{self.ulysses_degree}"
            )
        return USPGrid(self.ulysses_degree, g // self.ulysses_degree)

    def indices(self, n: int, g: int) -> list[np.ndarray]:
        grid = self._grid(g)
        u, r = grid.ulysses_degree, grid.ring_degree
        ring_shards = self.partitioner.indices(n, r)
        m = n // g
        out = []
        for rank in range(g):
            ring_idx = grid.ring_index(rank)
            ul = grid.ulysses_index(rank)
            out.append(ring_shards[ring_idx][ul * m : (ul + 1) * m])
        return out

    def shard(self, x: np.ndarray, g: int) -> list[np.ndarray]:
        n = x.shape[-2]
        return [np.take(x, idx, axis=-2) for idx in self.indices(n, g)]

    def _gather(self, parts: list[np.ndarray], axis: int = -2) -> np.ndarray:
        g = len(parts)
        n = sum(p.shape[axis] for p in parts)
        order = np.concatenate(self.indices(n, g))
        stacked = np.concatenate(parts, axis=axis)
        inv = np.empty(n, dtype=np.int64)
        inv[order] = np.arange(n)
        return np.take(stacked, inv, axis=axis)

    def run(self, topology, q, k, v, mask=None, do=None, scale=None, comm=None):
        if comm is None:
            comm = SimCommunicator(topology)
        g = topology.world_size
        n = q.shape[-2]
        idxs = self.indices(n, g)
        qs, ks, vs = self.shard(q, g), self.shard(k, g), self.shard(v, g)
        os, lses, ctx = self.forward_shards(comm, qs, ks, vs, idxs, mask, scale)
        result = AttentionResult(
            o=self._gather(os, axis=-2),
            lse=self._gather([l[..., None] for l in lses], axis=-2)[..., 0],
            comm=comm,
        )
        if do is not None:
            dos = self.shard(do, g)
            dqs, dks, dvs = self.backward_shards(comm, ctx, dos)
            result.dq = self._gather(dqs, axis=-2)
            result.dk = self._gather(dks, axis=-2)
            result.dv = self._gather(dvs, axis=-2)
        return result

    def forward_shards(self, comm, qs, ks, vs, idxs, mask, scale):
        grid = self._grid(comm.world_size)
        return usp_attention_forward(
            comm, grid, qs, ks, vs, idxs, mask=mask, scale=scale,
            block_size=self.block_size,
        )

    def backward_shards(self, comm, ctx, dos):
        return usp_attention_backward(
            comm, ctx, dos, use_burst_backward=self.use_burst_backward
        )


class SelectiveMethod(DistributedAttention):
    """Sparsity-aware selective communication (extension; see
    :mod:`repro.attention.selective`).

    Fetches only the KV shards the mask requires (point-to-point) instead
    of ring-circulating everything.  Pays off with *contiguous* shards and
    sparse masks; with balanced partitions every tile is live and it
    degenerates to all-pairs exchange.
    """

    name = "selective"

    def __init__(self, partitioner: Partitioner | None = None, block_size: int = 128):
        super().__init__(partitioner or ContiguousPartitioner(), block_size)

    def forward_shards(self, comm, qs, ks, vs, idxs, mask, scale):
        from repro.attention.selective import selective_attention_forward

        os, lses = selective_attention_forward(
            comm, qs, ks, vs, idxs, mask=mask, scale=scale,
            block_size=self.block_size,
        )
        ctx = _RingContext(None, list(qs), list(ks), list(vs), os, lses,
                           list(idxs), mask, scale)
        return os, lses, ctx

    def backward_shards(self, comm, ctx, dos):
        from repro.attention.selective import selective_attention_backward

        return selective_attention_backward(
            comm, ctx.qs, ctx.ks, ctx.vs, ctx.os, ctx.lses, dos, ctx.idxs,
            mask=ctx.mask, scale=ctx.scale, block_size=self.block_size,
        )


METHOD_REGISTRY = {
    "megatron-cp": RingAttentionMethod,
    "loongtrain-double": DoubleRingMethod,
    "burst": BurstAttentionMethod,
    "ulysses": UlyssesMethod,
    "usp": USPMethod,
    "selective": SelectiveMethod,
}


def get_method(name: str, **kwargs) -> DistributedAttention:
    """Instantiate a distributed attention method by registry name."""
    try:
        cls = METHOD_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown method {name!r}; available: {sorted(METHOD_REGISTRY)}"
        ) from None
    return cls(**kwargs)
