"""USP: hybrid head + context ("Ulysses + ring") parallelism (LoongTrain).

The ``G = u × r`` devices form a 2-D grid with *head-first placement*:
``rank = ring_index * u + ulysses_index``, so the size-``u`` Ulysses groups
are contiguous ranks (inside one node when ``u`` divides the node size —
all-to-alls stay on NVLink) and the size-``r`` ring groups stride across
nodes.

A pass is: (1) all-to-all inside each Ulysses group to trade sequence for
heads, (2) ring attention among the ``r`` ring positions on head-sharded
data (Algorithm 1 backward, as LoongTrain uses — or Algorithm 2 when
``use_burst_backward`` is set, which is the "Burst inside USP" variant),
(3) all-to-all back.

Compared to a pure ring over ``G`` devices, the ring is only ``r`` long and
moves ``H/u`` of the heads, cutting ring traffic by ``u×`` at the price of
the unoverlappable all-to-alls; compared to pure Ulysses, the head count
only needs to be divisible by ``u``, not ``G``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.attention.burst import burst_attention_backward
from repro.attention.ring import ring_attention_backward_kv, ring_attention_forward
from repro.comm import SimCommunicator, grouped_ring_schedule
from repro.masks import MaskPattern
from repro.obs.tracer import traced


@dataclass(frozen=True)
class USPGrid:
    """The 2-D process grid: ``world = ulysses_degree * ring_degree``."""

    ulysses_degree: int
    ring_degree: int

    @property
    def world(self) -> int:
        return self.ulysses_degree * self.ring_degree

    def ulysses_groups(self) -> list[list[int]]:
        """Contiguous rank groups performing all-to-alls (head-first)."""
        u = self.ulysses_degree
        return [list(range(g * u, (g + 1) * u)) for g in range(self.ring_degree)]

    def ring_groups(self) -> list[list[int]]:
        """Strided rank groups forming the context-parallel rings."""
        u = self.ulysses_degree
        return [
            [ring * u + ul for ring in range(self.ring_degree)]
            for ul in range(u)
        ]

    def ring_index(self, rank: int) -> int:
        return rank // self.ulysses_degree

    def ulysses_index(self, rank: int) -> int:
        return rank % self.ulysses_degree


@dataclass
class USPContext:
    """Saved state between USP forward and backward."""

    grid: USPGrid
    q_h: list[np.ndarray]
    k_h: list[np.ndarray]
    v_h: list[np.ndarray]
    o_h: list[np.ndarray]
    lse_h: list[np.ndarray]
    ring_idxs: list[np.ndarray]
    local_sizes: list[int]
    mask: MaskPattern | None
    scale: float
    block_size: int


def _split_heads(x: np.ndarray, u: int) -> list[np.ndarray]:
    hh = x.shape[0] // u
    return [x[i * hh : (i + 1) * hh] for i in range(u)]


def _seq_to_head(
    comm: SimCommunicator,
    grid: USPGrid,
    arrays: Sequence[tuple[np.ndarray, ...]],
    *,
    phase: str,
    tag: str,
) -> list[list[tuple[np.ndarray, ...]]]:
    """All-to-all bundles of arrays inside each Ulysses group."""
    u = grid.ulysses_degree
    chunks = [
        [tuple(_split_heads(a, u)[d] for a in arrays[r]) for d in range(u)]
        for r in range(grid.world)
    ]
    return comm.group_all_to_all(
        chunks, grid.ulysses_groups(), phase=phase, tag=tag
    )


@traced("attn.pass", "attn", algorithm="usp", direction="fwd")
def usp_attention_forward(
    comm: SimCommunicator,
    grid: USPGrid,
    qs: Sequence[np.ndarray],
    ks: Sequence[np.ndarray],
    vs: Sequence[np.ndarray],
    idxs: Sequence[np.ndarray],
    mask: MaskPattern | None = None,
    scale: float | None = None,
    *,
    phase: str = "attn-fwd",
    block_size: int = 128,
) -> tuple[list[np.ndarray], list[np.ndarray], USPContext]:
    """USP forward pass.

    ``qs[r]`` is ``(H, S/G, D)``; ranks of one Ulysses group must hold
    consecutive slices of their ring group's sequence shard (the engine's
    partitioning guarantees this).  ``idxs[r]`` are the global positions of
    rank ``r``'s local tokens.  Returns seq-sharded ``(os, lses, ctx)``.
    """
    u = grid.ulysses_degree
    if grid.world != comm.world_size:
        raise ValueError(
            f"grid world {grid.world} != communicator world {comm.world_size}"
        )
    h = qs[0].shape[0]
    if h % u != 0:
        raise ValueError(f"{h} heads not divisible by ulysses degree {u}")
    if ks[0].shape[0] != h:
        raise ValueError(
            "USP's head-parallel dimension requires equal query/KV head "
            f"counts; got {h} vs {ks[0].shape[0]}"
        )
    if scale is None:
        scale = 1.0 / np.sqrt(qs[0].shape[-1])
    if mask is not None and mask.bias_block(np.array([0]), np.array([0])) is not None:
        raise NotImplementedError(
            "USP does not support biased masks (ALiBi) — the head-parallel "
            "dimension would need per-slice bias plumbing; use a "
            "ring-family method"
        )
    local_sizes = [q.shape[-2] for q in qs]

    # (1) seq -> head inside each Ulysses group.
    received = _seq_to_head(
        comm, grid, [(qs[r], ks[r], vs[r]) for r in range(grid.world)],
        phase=phase, tag="usp-qkv",
    )
    q_h, k_h, v_h, ring_idxs = [], [], [], []
    for r in range(grid.world):
        group = grid.ulysses_groups()[grid.ring_index(r)]
        q_h.append(np.concatenate([received[r][p][0] for p in range(u)], axis=-2))
        k_h.append(np.concatenate([received[r][p][1] for p in range(u)], axis=-2))
        v_h.append(np.concatenate([received[r][p][2] for p in range(u)], axis=-2))
        ring_idxs.append(np.concatenate([idxs[peer] for peer in group]))

    # (2) ring attention across ring groups on head-sharded data.
    schedule = grouped_ring_schedule(comm.topology, grid.ring_groups())
    o_h, lse_h = ring_attention_forward(
        comm, schedule, q_h, k_h, v_h, ring_idxs, mask=mask, scale=scale,
        phase=phase, block_size=block_size,
    )

    # (3) head -> seq: return each peer its sequence slice of the outputs.
    sizes_by_rank = list(local_sizes)
    out_chunks = []
    for r in range(grid.world):
        group = grid.ulysses_groups()[grid.ring_index(r)]
        bounds = np.cumsum([0] + [sizes_by_rank[p] for p in group])
        out_chunks.append(
            [
                (
                    o_h[r][:, bounds[p] : bounds[p + 1], :],
                    lse_h[r][:, bounds[p] : bounds[p + 1]],
                )
                for p in range(u)
            ]
        )
    received_o = comm.group_all_to_all(
        out_chunks, grid.ulysses_groups(), phase=phase, tag="usp-out"
    )
    os_out, lses_out = [], []
    for r in range(grid.world):
        os_out.append(np.concatenate([received_o[r][p][0] for p in range(u)], axis=0))
        lses_out.append(np.concatenate([received_o[r][p][1] for p in range(u)], axis=0))

    ctx = USPContext(
        grid=grid, q_h=q_h, k_h=k_h, v_h=v_h, o_h=o_h, lse_h=lse_h,
        ring_idxs=ring_idxs, local_sizes=local_sizes,
        mask=mask, scale=scale, block_size=block_size,
    )
    return os_out, lses_out, ctx


@traced("attn.pass", "attn", algorithm="usp", direction="bwd")
def usp_attention_backward(
    comm: SimCommunicator,
    ctx: USPContext,
    dos: Sequence[np.ndarray],
    *,
    phase: str = "attn-bwd",
    use_burst_backward: bool = False,
) -> tuple[list[np.ndarray], list[np.ndarray], list[np.ndarray]]:
    """USP backward pass: dO to head layout, ring backward, grads back.

    ``use_burst_backward=False`` reproduces LoongTrain-USP (Algorithm 1 in
    the ring); ``True`` swaps in BurstAttention's Algorithm 2.
    """
    grid = ctx.grid
    u = grid.ulysses_degree
    received = _seq_to_head(
        comm, grid, [(dos[r],) for r in range(grid.world)],
        phase=phase, tag="usp-dout",
    )
    do_h = [
        np.concatenate([received[r][p][0] for p in range(u)], axis=-2)
        for r in range(grid.world)
    ]

    schedule = grouped_ring_schedule(comm.topology, grid.ring_groups())
    backward = burst_attention_backward if use_burst_backward else ring_attention_backward_kv
    dq_h, dk_h, dv_h = backward(
        comm, schedule, ctx.q_h, ctx.k_h, ctx.v_h, ctx.o_h, ctx.lse_h, do_h,
        ctx.ring_idxs, mask=ctx.mask, scale=ctx.scale,
        phase=phase, block_size=ctx.block_size,
    )

    grad_chunks = []
    for r in range(grid.world):
        group = grid.ulysses_groups()[grid.ring_index(r)]
        bounds = np.cumsum([0] + [ctx.local_sizes[p] for p in group])
        grad_chunks.append(
            [
                (
                    dq_h[r][:, bounds[p] : bounds[p + 1], :],
                    dk_h[r][:, bounds[p] : bounds[p + 1], :],
                    dv_h[r][:, bounds[p] : bounds[p + 1], :],
                )
                for p in range(u)
            ]
        )
    received_g = comm.group_all_to_all(
        grad_chunks, grid.ulysses_groups(), phase=phase, tag="usp-grads"
    )
    dqs, dks, dvs = [], [], []
    for r in range(grid.world):
        dqs.append(np.concatenate([received_g[r][p][0] for p in range(u)], axis=0))
        dks.append(np.concatenate([received_g[r][p][1] for p in range(u)], axis=0))
        dvs.append(np.concatenate([received_g[r][p][2] for p in range(u)], axis=0))
    return dqs, dks, dvs


def usp_attention(
    comm: SimCommunicator,
    grid: USPGrid,
    qs: Sequence[np.ndarray],
    ks: Sequence[np.ndarray],
    vs: Sequence[np.ndarray],
    idxs: Sequence[np.ndarray],
    mask: MaskPattern | None = None,
    scale: float | None = None,
    dos: Sequence[np.ndarray] | None = None,
    *,
    block_size: int = 128,
    use_burst_backward: bool = False,
) -> dict:
    """One-call USP wrapper mirroring :func:`repro.attention.ulysses_attention`."""
    os_out, lses_out, ctx = usp_attention_forward(
        comm, grid, qs, ks, vs, idxs, mask, scale, block_size=block_size
    )
    result = {"os": os_out, "lses": lses_out}
    if dos is not None:
        dqs, dks, dvs = usp_attention_backward(
            comm, ctx, dos, use_burst_backward=use_burst_backward
        )
        result.update({"dqs": dqs, "dks": dks, "dvs": dvs})
    return result
