"""Distributed attention implementations.

All five systems compared in the paper are implemented with exact numerics
over the simulated cluster:

* :mod:`repro.attention.ring` — the shared ring forward pass (online-softmax
  accumulation, any :class:`~repro.comm.RingSchedule`) and the
  **Algorithm 1** backward pass that circulates ``(K, V, dK, dV)``
  (RingAttention / Megatron-CP / LoongTrain-DoubleRing).
* :mod:`repro.attention.burst` — the **Algorithm 2** backward pass that
  circulates ``(Q, dQ, dO, D, Lse)`` instead, BurstAttention's
  communication-optimised rewrite (3Nd + 2N vs 4Nd per GPU).
* :mod:`repro.attention.ulysses` — DeepSpeed-Ulysses head parallelism via
  all-to-all.
* :mod:`repro.attention.usp` — LoongTrain's hybrid head+context (USP)
  parallelism on a 2-D process grid.
* :mod:`repro.attention.methods` — a uniform :class:`DistributedAttention`
  facade and registry used by the engine, tests, and benchmarks.
"""

from repro.attention.ring import (
    ring_attention_forward,
    ring_attention_backward_kv,
)
from repro.attention.burst import burst_attention_backward
from repro.attention.ulysses import ulysses_attention
from repro.attention.usp import usp_attention
from repro.attention.methods import (
    DistributedAttention,
    BurstAttentionMethod,
    RingAttentionMethod,
    DoubleRingMethod,
    UlyssesMethod,
    USPMethod,
    get_method,
    METHOD_REGISTRY,
)

__all__ = [
    "ring_attention_forward",
    "ring_attention_backward_kv",
    "burst_attention_backward",
    "ulysses_attention",
    "usp_attention",
    "DistributedAttention",
    "BurstAttentionMethod",
    "RingAttentionMethod",
    "DoubleRingMethod",
    "UlyssesMethod",
    "USPMethod",
    "get_method",
    "METHOD_REGISTRY",
]
