"""BurstAttention's Algorithm 2 backward pass.

The key identity (Eq. 7–8 of the paper): with ``P_i = softmax(S_i)`` and
``dP_i = dO_i V^T``,

    dS_i = P_i ∘ dP_i − D_i P_i,     where  D_i = rowsum(dO_i ∘ O_i)

so the full row of output states ``O_i`` never needs to travel — only the
scalar-per-row statistics ``D_i`` and ``Lse_i``.  BurstAttention therefore
pins ``(K_i, V_i, dK_i, dV_i)`` on their owner and circulates
``(Q_j, dQ_j, dO_j, D_j, Lse_j)`` instead:

=================  =======================  ======================
                   Algorithm 1 (Ring)       Algorithm 2 (Burst)
-----------------  -----------------------  ----------------------
circulates         K, V, dK, dV             Q, dQ, dO, D, Lse
per-hop payload    4 (N/G) d                3 (N/G) d + 2 (N/G)
total per rank     4Nd                      3Nd + 2N   (≈ −25 %)
D recomputation    every round              once, before the loop
=================  =======================  ======================

Numerically the result is identical to Algorithm 1 and to the dense
reference — the tests assert both, along with the exact traffic volumes.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.comm import BidirectionalFlow, RingSchedule, SimCommunicator
from repro.comm.ring import check_ring_mode
from repro.kernels import (
    BiasTileCache,
    KernelWorkspace,
    TilePlan,
    get_backend,
)
from repro.masks import MaskPattern
from repro.attention.ring import _resolve_tiles
from repro.obs.tracer import traced


def _tile_backward_qgrad(
    q_j: np.ndarray,
    k_i: np.ndarray,
    v_i: np.ndarray,
    do_j: np.ndarray,
    d_j: np.ndarray,
    lse_j: np.ndarray,
    tile: np.ndarray | None,
    scale: float,
    block_q: int,
    block_k: int,
    bias: np.ndarray | None = None,
    plan: TilePlan | None = None,
    workspace: KernelWorkspace | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One Algorithm-2 device step: given the circulating query-side bundle
    and the pinned ``(K_i, V_i)``, compute ``(dQ_j part, dK_i part, dV_i
    part)``.  Tiled like the flash kernel so no full score matrix forms.

    This mirrors lines 7–13 of Algorithm 2 with ``D_j``/``Lse_j`` taken
    from the ring instead of recomputed (the paper's Algorithm 2 line 11
    writes ``D_i``; the derivation in Eq. 7–8 shows the query-side ``D_j``
    is the quantity required, which is what travels).  The tile loop is
    :func:`repro.kernels.flash_backward_tiles` — the same backward core as
    :func:`~repro.kernels.flash_attention_backward` minus the local ``D``
    recomputation, so it consumes tile plans and workspaces natively.
    """
    return get_backend().flash_backward_tiles(
        q_j, k_i, v_i, lse_j, d_j, do_j,
        mask=tile, scale=scale, block_q=block_q, block_k=block_k,
        bias=bias, plan=plan, workspace=workspace,
    )


@traced("attn.pass", "attn", algorithm="burst-alg2", direction="bwd")
def burst_attention_backward(
    comm: SimCommunicator,
    schedule: RingSchedule,
    qs: Sequence[np.ndarray],
    ks: Sequence[np.ndarray],
    vs: Sequence[np.ndarray],
    os: Sequence[np.ndarray],
    lses: Sequence[np.ndarray],
    dos: Sequence[np.ndarray],
    idxs: Sequence[np.ndarray],
    mask: MaskPattern | None = None,
    scale: float | None = None,
    *,
    phase: str = "attn-bwd",
    block_size: int = 128,
    ring_mode: str = "unidirectional",
) -> tuple[list[np.ndarray], list[np.ndarray], list[np.ndarray]]:
    """Algorithm 2: BurstAttention's communication-optimised backward pass.

    Per-rank send volume is exactly ``3Nd + 2N·H`` elements (``H`` = number
    of leading head slots; the paper's single-head statement is ``3Nd+2N``),
    ~25 % below Algorithm 1's ``4Nd``.  Returns per-rank ``(dqs, dks, dvs)``.

    Under ``ring_mode="bidirectional"`` the read-only ``(Q, dO, D, Lse)``
    parts of the bundle split across two counter-rotating streams while
    the ``dQ`` accumulator rides the full forward circulation (keeping its
    addition order, and therefore the results, bitwise identical); once
    the reverse stream takes over, the forward bundle and the return hop
    carry ``dQ`` alone.
    """
    check_ring_mode(ring_mode)
    g = comm.world_size
    if scale is None:
        scale = 1.0 / np.sqrt(qs[0].shape[-1])
    origins = schedule.origins()
    steps = schedule.num_steps

    dks = [np.zeros_like(k) for k in ks]
    dvs = [np.zeros_like(v) for v in vs]
    # D_i computed once, locally, before the ring starts (Alg. 2 line 2).
    ds = [np.sum(dos[r] * os[r], axis=-1) for r in range(g)]

    bias_cache = BiasTileCache()
    workspace = KernelWorkspace()
    bufs: list[object] = [
        (
            qs[r].copy(),
            np.zeros_like(qs[r]),  # dQ accumulator rides the ring
            dos[r].copy(),
            ds[r].copy(),
            lses[r].copy(),
        )
        for r in range(g)
    ]
    flow = (
        BidirectionalFlow(
            comm, schedule,
            [(bufs[r][0], bufs[r][2], bufs[r][3], bufs[r][4]) for r in range(g)],
            phase=phase, tag="q+grads",
        )
        if ring_mode == "bidirectional"
        else None
    )
    ro: list[object] | None = None

    for t in range(steps):
        for r in range(g):
            j = origins[t][r]
            if ro is None:
                q_j, dq_j, do_j, d_j, lse_j = bufs[r]
            else:
                q_j, do_j, d_j, lse_j = ro[r]
                (dq_j,) = bufs[r]
            # Queries are shard j, keys/values are pinned shard r.
            skip, plan, tile, bias = _resolve_tiles(
                mask, idxs[j], idxs[r], block_size, bias_cache
            )
            if skip:
                continue
            dq_part, dk_part, dv_part = _tile_backward_qgrad(
                q_j, ks[r], vs[r], do_j, d_j, lse_j, tile, scale,
                block_size, block_size,
                bias=bias, plan=plan, workspace=workspace,
            )
            dks[r] += dk_part
            dvs[r] += dv_part
            if ro is None:
                bufs[r] = (q_j, dq_j + dq_part, do_j, d_j, lse_j)
            else:
                bufs[r] = (dq_j + dq_part,)
        if t < steps - 1:
            if flow is not None and t == flow.forward_transitions:
                # Query-side delivery is now the reverse stream's job;
                # only the dQ accumulator stays on the forward circulation.
                bufs = [(b[1],) for b in bufs]
            bufs = schedule.apply(comm, bufs, t, phase=phase, tag="q+grads")
            if flow is not None:
                flow.poststep(t)
                ro = flow.delivered(t + 1)

    # Final hop: dQ accumulators return to their owners.
    if flow is not None:
        bufs = [b if len(b) == 1 else (b[1],) for b in bufs]
    bufs = comm.exchange(
        bufs, schedule.return_permutation(), phase=phase, tag="q+grads-return"
    )
    dqs = [bufs[r][1] if flow is None else bufs[r][0] for r in range(g)]
    return dqs, dks, dvs
