"""Ring attention: shared forward pass and the Algorithm 1 backward pass.

**Forward** (all ring-family methods share it): each rank keeps its query
shard pinned and a ``(K, V)`` bundle circulates along the ring schedule.
At each of the ``G`` compute steps a rank runs the local FlashAttention
kernel between its queries and the currently-held KV shard, merging the
partial ``(O, lse)`` with the online-softmax rule.  Per-rank send volume is
``(G-1)/G * 2Nd`` elements — the paper's ``2Nd``.

**Backward, Algorithm 1** (RingAttention / Megatron-CP / LoongTrain):
``(K_j, V_j, dK_j, dV_j)`` circulates; each rank uses its locally stored
``Q_i, O_i, dO_i, Lse_i`` to accumulate into the circulating ``dK_j, dV_j``
and its own ``dQ_i``.  The bundle makes a full loop of ``G`` hops so the
gradients return to their owners: per-rank send volume is exactly ``4Nd``
elements.

Both functions accept any :class:`~repro.comm.RingSchedule`, so the same
code runs the flat global ring, the topology-aware double ring, and USP's
grouped rings; masks are global-index predicates, so zigzag/striped/
block-balanced partitions are all handled uniformly (empty tiles are
skipped, full tiles run unmasked — the workload-balance optimisation).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.comm import BidirectionalFlow, RingSchedule, SimCommunicator
from repro.comm.ring import check_ring_mode
from repro.kernels import (
    BiasTileCache,
    KernelWorkspace,
    TilePlan,
    get_backend,
    planning_enabled,
    record_shard_skip,
)
from repro.kernels.softmax import NEG_INF, merge_states
from repro.masks import MaskPattern
from repro.obs.tracer import traced


def _tile_mask(
    mask: MaskPattern | None, q_idx: np.ndarray, k_idx: np.ndarray
) -> tuple[np.ndarray | None, bool]:
    """Resolve the dense mask tile between two shards (legacy baseline).

    Returns ``(tile_or_None, skip)`` — ``skip`` means the tile is entirely
    masked and contributes nothing; a ``None`` tile with ``skip=False``
    means unmasked (full) attention, letting the kernel skip mask handling.
    Materialises the shard-pair mask for partial tiles; the plan-driven
    path (:func:`_resolve_tiles`) never does.
    """
    if mask is None:
        return None, False
    state = mask.tile_state(q_idx, k_idx)
    if state == "empty":
        return None, True
    if state == "full":
        return None, False
    return mask.block(q_idx, k_idx), False


def _tile_bias(
    mask: MaskPattern | None, q_idx: np.ndarray, k_idx: np.ndarray
) -> np.ndarray | None:
    """Resolve the additive score bias (ALiBi etc.) for a shard pair."""
    if mask is None:
        return None
    return mask.bias_block(q_idx, k_idx)


def _resolve_tiles(
    mask: MaskPattern | None,
    q_idx: np.ndarray,
    k_idx: np.ndarray,
    block_size: int,
    bias_cache: BiasTileCache | None = None,
    *,
    include_bias: bool = True,
) -> tuple[bool, TilePlan | None, np.ndarray | None, np.ndarray | None]:
    """Resolve how the kernel should see one (query-shard, key-shard) pair.

    Returns ``(skip, plan, dense_tile, dense_bias)``.  With planning
    enabled (the default) partial shard pairs come back as a
    :class:`~repro.kernels.TilePlan` — sub-tiles classified per block,
    dense mask never materialised; with ``use_planning(False)`` the legacy
    ``(dense_tile, dense_bias)`` arrays are returned instead, which is the
    baseline the bench harness measures against.
    """
    if mask is None:
        return False, None, None, None
    state = mask.tile_state(q_idx, k_idx)
    if state == "empty":
        if planning_enabled():
            record_shard_skip(len(q_idx), len(k_idx), block_size, block_size)
        return True, None, None, None
    if planning_enabled():
        plan = TilePlan.build(
            mask, q_idx, k_idx, block_size, block_size,
            bias_cache=bias_cache, include_bias=include_bias,
            assume_full=(state == "full"),
        )
        return False, plan, None, None
    tile = mask.block(q_idx, k_idx) if state == "partial" else None
    bias = mask.bias_block(q_idx, k_idx) if include_bias else None
    return False, None, tile, bias


@traced("attn.pass", "attn", algorithm="ring", direction="fwd")
def ring_attention_forward(
    comm: SimCommunicator,
    schedule: RingSchedule,
    qs: Sequence[np.ndarray],
    ks: Sequence[np.ndarray],
    vs: Sequence[np.ndarray],
    idxs: Sequence[np.ndarray],
    mask: MaskPattern | None = None,
    scale: float | None = None,
    *,
    phase: str = "attn-fwd",
    block_size: int = 128,
    ring_mode: str = "unidirectional",
) -> tuple[list[np.ndarray], list[np.ndarray]]:
    """Distributed attention forward pass over ``schedule``.

    Parameters
    ----------
    qs, ks, vs:
        Per-rank shards, each ``(..., S/G, D)``.
    idxs:
        Per-rank global token indices (from the partitioner).  These are
        static metadata known to every rank, so they are *not* circulated.
    mask:
        Optional global mask pattern; tiles are resolved per (rank, step).
    ring_mode:
        ``"unidirectional"`` (default) circulates the KV bundle one way;
        ``"bidirectional"`` splits delivery across two counter-rotating
        streams (TokenRing) while keeping the compute and online-softmax
        merge order — and hence the results, bitwise — unchanged.

    Returns
    -------
    (os, lses):
        Per-rank output shards and logsumexp statistics.
    """
    check_ring_mode(ring_mode)
    g = comm.world_size
    if schedule.num_steps != g and schedule.name != "grouped-ring":
        raise ValueError(
            f"schedule covers {schedule.num_steps} steps but world size is {g}"
        )
    if scale is None:
        scale = 1.0 / np.sqrt(qs[0].shape[-1])
    origins = schedule.origins()
    steps = schedule.num_steps

    os: list[np.ndarray] = [
        np.zeros(q.shape[:-1] + (vs[i].shape[-1],), dtype=np.float64)
        for i, q in enumerate(qs)
    ]
    lses: list[np.ndarray] = [
        np.full(q.shape[:-1], NEG_INF, dtype=np.float64) for q in qs
    ]

    bias_cache = BiasTileCache()
    workspace = KernelWorkspace()
    bufs: list[object] = [(ks[r].copy(), vs[r].copy()) for r in range(g)]
    flow = (
        BidirectionalFlow(comm, schedule, bufs, phase=phase, tag="kv")
        if ring_mode == "bidirectional"
        else None
    )
    cur = bufs
    for t in range(steps):
        for r in range(g):
            j = origins[t][r]
            k_j, v_j = cur[r]
            skip, plan, tile, bias = _resolve_tiles(
                mask, idxs[r], idxs[j], block_size, bias_cache
            )
            if skip:
                continue
            o_part, lse_part = get_backend().flash_forward(
                qs[r], k_j, v_j, mask=tile, scale=scale,
                block_q=block_size, block_k=block_size,
                bias=bias, plan=plan, workspace=workspace,
            )
            os[r], lses[r] = merge_states(os[r], lses[r], o_part, lse_part)
        if t < steps - 1:
            if flow is None:
                bufs = schedule.apply(comm, bufs, t, phase=phase, tag="kv")
                cur = bufs
            else:
                # Forward stream only runs its half of the circulation;
                # later steps are fed by the counter-rotating stream.
                if t < flow.forward_transitions:
                    bufs = schedule.apply(comm, bufs, t, phase=phase, tag="kv")
                flow.poststep(t)
                delivered = flow.delivered(t + 1)
                cur = delivered if delivered is not None else bufs
    return os, lses


@traced("attn.pass", "attn", algorithm="ring-alg1", direction="bwd")
def ring_attention_backward_kv(
    comm: SimCommunicator,
    schedule: RingSchedule,
    qs: Sequence[np.ndarray],
    ks: Sequence[np.ndarray],
    vs: Sequence[np.ndarray],
    os: Sequence[np.ndarray],
    lses: Sequence[np.ndarray],
    dos: Sequence[np.ndarray],
    idxs: Sequence[np.ndarray],
    mask: MaskPattern | None = None,
    scale: float | None = None,
    *,
    phase: str = "attn-bwd",
    block_size: int = 128,
    ring_mode: str = "unidirectional",
) -> tuple[list[np.ndarray], list[np.ndarray], list[np.ndarray]]:
    """Algorithm 1: backward pass circulating ``(K, V, dK, dV)``.

    The circulating bundle is 4 shard-sized arrays; with ``G`` hops
    (``G - 1`` transitions plus the final return-to-owner permutation) the
    per-rank send volume is exactly ``4Nd`` elements — the baseline cost
    BurstAttention's Algorithm 2 improves on.

    Under ``ring_mode="bidirectional"`` the read-only ``(K, V)`` halves of
    the bundle are delivered over two counter-rotating streams while the
    ``(dK, dV)`` accumulators keep riding the full forward circulation
    (their addition order cannot change without changing the bits); once
    the reverse stream takes over KV delivery, the forward bundle and the
    return hop shrink to the accumulators alone.

    Returns per-rank ``(dqs, dks, dvs)``.
    """
    check_ring_mode(ring_mode)
    g = comm.world_size
    if scale is None:
        scale = 1.0 / np.sqrt(qs[0].shape[-1])
    origins = schedule.origins()
    steps = schedule.num_steps

    dqs = [np.zeros_like(q) for q in qs]
    bias_cache = BiasTileCache()
    workspace = KernelWorkspace()
    bufs: list[object] = [
        (ks[r].copy(), vs[r].copy(), np.zeros_like(ks[r]), np.zeros_like(vs[r]))
        for r in range(g)
    ]
    flow = (
        BidirectionalFlow(
            comm, schedule, [(bufs[r][0], bufs[r][1]) for r in range(g)],
            phase=phase, tag="kv+grads",
        )
        if ring_mode == "bidirectional"
        else None
    )
    ro: list[object] | None = None

    for t in range(steps):
        for r in range(g):
            j = origins[t][r]
            k_j, v_j = ro[r] if ro is not None else bufs[r][:2]
            dk_j, dv_j = bufs[r][-2], bufs[r][-1]
            skip, plan, tile, bias = _resolve_tiles(
                mask, idxs[r], idxs[j], block_size, bias_cache
            )
            if skip:
                continue
            # Note: Algorithm 1 recomputes D_i = rowsum(dO_i * O_i) every
            # round on the device — the flash kernel below does exactly
            # that, which is the extra compute Algorithm 2 eliminates.
            dq_part, dk_part, dv_part = get_backend().flash_backward(
                qs[r], k_j, v_j, os[r], lses[r], dos[r],
                mask=tile, scale=scale,
                block_q=block_size, block_k=block_size,
                bias=bias, plan=plan, workspace=workspace,
            )
            dqs[r] += dq_part
            if len(bufs[r]) == 4:
                bufs[r] = (k_j, v_j, dk_j + dk_part, dv_j + dv_part)
            else:
                bufs[r] = (dk_j + dk_part, dv_j + dv_part)
        if t < steps - 1:
            if flow is not None and t == flow.forward_transitions:
                # KV delivery is now the reverse stream's job; only the
                # gradient accumulators stay on the forward circulation.
                bufs = [b[-2:] for b in bufs]
            bufs = schedule.apply(comm, bufs, t, phase=phase, tag="kv+grads")
            if flow is not None:
                flow.poststep(t)
                ro = flow.delivered(t + 1)

    # Final hop: send each circulating bundle home to its owner.
    if flow is not None:
        bufs = [b[-2:] for b in bufs]
    bufs = comm.exchange(
        bufs, schedule.return_permutation(), phase=phase, tag="kv+grads-return"
    )
    dks = [bufs[r][-2] for r in range(g)]
    dvs = [bufs[r][-1] for r in range(g)]
    return dqs, dks, dvs
