"""Sparsity-aware selective communication (the paper's stated future work).

Ring circulation moves every KV shard to every rank even when the mask
makes most (query-shard, KV-shard) tile pairs empty — for a 32K sliding
window over 1M tokens, ~94 % of the circulated data is never read.  The
paper closes with "there remains potential for further optimization in
communication patterns for sparse attention"; this module implements the
natural answer:

* build the **tile dependency matrix** ``need[i, j]`` = does rank ``i``'s
  query shard attend to anything in rank ``j``'s KV shard;
* forward: rank ``j`` point-to-point sends ``(K_j, V_j)`` only to the
  ranks that need it;
* backward: the query-side bundle ``(Q_i, dO_i, D_i, Lse_i)`` travels
  only to needed KV owners, each returning partial ``(dQ, dK, dV)``
  contributions.

With block-balanced partitions the dependency matrix is sparse exactly
when the mask is block-sparse, so communication volume scales with the
mask's live bandwidth (``O(N·w/G)`` for a window ``w``) instead of
``O(N)`` — verified against the ring volumes in the tests and swept in
``benchmarks/bench_ext_selective.py``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.attention.ring import _resolve_tiles
from repro.comm import SimCommunicator
from repro.kernels import KernelWorkspace, get_backend
from repro.kernels.softmax import NEG_INF, merge_states
from repro.masks import MaskPattern
from repro.obs.tracer import traced


def tile_dependency_matrix(
    mask: MaskPattern | None, idxs: Sequence[np.ndarray]
) -> np.ndarray:
    """``need[i, j]`` = rank ``i``'s queries attend into rank ``j``'s keys."""
    g = len(idxs)
    need = np.ones((g, g), dtype=bool)
    if mask is None:
        return need
    for i in range(g):
        for j in range(g):
            need[i, j] = mask.tile_state(idxs[i], idxs[j]) != "empty"
    return need


def communication_savings(
    mask: MaskPattern | None, idxs: Sequence[np.ndarray]
) -> float:
    """Fraction of off-diagonal KV transfers a ring would waste."""
    need = tile_dependency_matrix(mask, idxs)
    g = len(idxs)
    off_diag = g * (g - 1)
    if off_diag == 0:
        return 0.0
    needed = int(need.sum() - np.trace(need))
    return 1.0 - needed / off_diag


@traced("attn.pass", "attn", algorithm="selective", direction="fwd")
def selective_attention_forward(
    comm: SimCommunicator,
    qs: Sequence[np.ndarray],
    ks: Sequence[np.ndarray],
    vs: Sequence[np.ndarray],
    idxs: Sequence[np.ndarray],
    mask: MaskPattern | None = None,
    scale: float | None = None,
    *,
    phase: str = "attn-fwd",
    block_size: int = 128,
) -> tuple[list[np.ndarray], list[np.ndarray]]:
    """Forward pass fetching only the KV shards the mask requires."""
    g = comm.world_size
    if scale is None:
        scale = 1.0 / np.sqrt(qs[0].shape[-1])
    need = tile_dependency_matrix(mask, idxs)
    os = [
        np.zeros(q.shape[:-1] + (vs[i].shape[-1],), dtype=np.float64)
        for i, q in enumerate(qs)
    ]
    lses = [np.full(q.shape[:-1], NEG_INF, dtype=np.float64) for q in qs]
    workspace = KernelWorkspace()
    for i in range(g):
        for j in range(g):
            if not need[i, j]:
                continue
            k_j, v_j = (
                (ks[j], vs[j])
                if i == j
                else comm.send(j, i, (ks[j], vs[j]), phase=phase, tag="sel-kv")
            )
            # This path has never forwarded the pattern's bias (selective
            # fetch is mask-structure only), so the plan omits it too.
            skip, plan, tile, _ = _resolve_tiles(
                mask, idxs[i], idxs[j], block_size, include_bias=False
            )
            if skip:
                continue
            o_part, lse_part = get_backend().flash_forward(
                qs[i], k_j, v_j, mask=tile, scale=scale,
                block_q=block_size, block_k=block_size,
                plan=plan, workspace=workspace,
            )
            os[i], lses[i] = merge_states(os[i], lses[i], o_part, lse_part)
    return os, lses


@traced("attn.pass", "attn", algorithm="selective", direction="bwd")
def selective_attention_backward(
    comm: SimCommunicator,
    qs: Sequence[np.ndarray],
    ks: Sequence[np.ndarray],
    vs: Sequence[np.ndarray],
    os: Sequence[np.ndarray],
    lses: Sequence[np.ndarray],
    dos: Sequence[np.ndarray],
    idxs: Sequence[np.ndarray],
    mask: MaskPattern | None = None,
    scale: float | None = None,
    *,
    phase: str = "attn-bwd",
    block_size: int = 128,
) -> tuple[list[np.ndarray], list[np.ndarray], list[np.ndarray]]:
    """Backward pass over needed tiles only.

    Follows Algorithm 2's insight — the query-side bundle
    ``(Q, dO, D, Lse)`` travels, KV stays pinned — but point-to-point:
    rank ``i`` sends its bundle to each needed KV owner ``j``, which
    computes the tile's gradients locally and returns ``dQ`` partials
    (``dK``/``dV`` partials accumulate on their owner, no return trip).
    """
    from repro.attention.burst import _tile_backward_qgrad

    g = comm.world_size
    if scale is None:
        scale = 1.0 / np.sqrt(qs[0].shape[-1])
    need = tile_dependency_matrix(mask, idxs)
    ds = [np.sum(dos[r] * os[r], axis=-1) for r in range(g)]
    dqs = [np.zeros_like(q) for q in qs]
    dks = [np.zeros_like(k) for k in ks]
    dvs = [np.zeros_like(v) for v in vs]

    workspace = KernelWorkspace()
    for i in range(g):
        for j in range(g):
            if not need[i, j]:
                continue
            skip, plan, tile, _ = _resolve_tiles(
                mask, idxs[i], idxs[j], block_size, include_bias=False
            )
            if skip:
                continue
            if i == j:
                q_i, do_i, d_i, lse_i = qs[i], dos[i], ds[i], lses[i]
            else:
                q_i, do_i, d_i, lse_i = comm.send(
                    i, j, (qs[i], dos[i], ds[i], lses[i]),
                    phase=phase, tag="sel-qbundle",
                )
            dq_part, dk_part, dv_part = _tile_backward_qgrad(
                q_i, ks[j], vs[j], do_i, d_i, lse_i, tile, scale,
                block_size, block_size,
                plan=plan, workspace=workspace,
            )
            dks[j] += dk_part
            dvs[j] += dv_part
            if i != j:
                dq_part = comm.send(j, i, dq_part, phase=phase, tag="sel-dq")
            dqs[i] += dq_part
    return dqs, dks, dvs


def selective_vs_ring_volume(
    mask: MaskPattern | None,
    idxs: Sequence[np.ndarray],
    shard_elems: int,
) -> dict[str, float]:
    """Closed-form forward KV volume comparison (elements, whole cluster).

    Ring: every rank forwards every shard: ``G * (G-1) * 2 * shard``.
    Selective: ``2 * shard`` per needed off-diagonal tile.
    """
    g = len(idxs)
    need = tile_dependency_matrix(mask, idxs)
    needed = int(need.sum() - np.trace(need))
    return {
        "ring": g * (g - 1) * 2.0 * shard_elems,
        "selective": needed * 2.0 * shard_elems,
        "savings": communication_savings(mask, idxs),
    }
