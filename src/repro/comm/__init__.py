"""Simulated SPMD communication substrate.

Everything "distributed" in this repository runs inside a single process:
per-rank state is held in plain Python lists indexed by global rank, and all
data movement goes through :class:`SimCommunicator`, which

* actually moves the numpy arrays (so numerics are exact), and
* logs every transfer's byte count and link class (so communication volumes
  can be asserted against the paper's analytic formulas, e.g. RingAttention's
  ``4Nd`` backward volume vs BurstAttention's ``3Nd + 2N``).

The API mirrors the mpi4py / NCCL vocabulary (ring send/recv, all-gather,
all-to-all, reduce-scatter, broadcast) but is collective-at-once: a single
call performs the operation for all ranks, which is the natural shape for a
single-process SPMD simulation.
"""

from repro.comm.traffic import TrafficLog, TransferRecord
from repro.comm.communicator import SimCommunicator
from repro.comm.failure import (
    NOMINAL_OP_S,
    FailureDetector,
    LeaseConfig,
    OpTiming,
    RankFailure,
    SimClock,
)
from repro.comm.ring import (
    RING_MODES,
    BidirectionalFlow,
    RingSchedule,
    bidirectional_split,
    check_ring_mode,
    global_ring_schedule,
    double_ring_schedule,
    grouped_ring_schedule,
)

__all__ = [
    "TrafficLog",
    "TransferRecord",
    "SimCommunicator",
    "NOMINAL_OP_S",
    "FailureDetector",
    "LeaseConfig",
    "OpTiming",
    "RankFailure",
    "SimClock",
    "RingSchedule",
    "RING_MODES",
    "BidirectionalFlow",
    "bidirectional_split",
    "check_ring_mode",
    "global_ring_schedule",
    "double_ring_schedule",
    "grouped_ring_schedule",
]
