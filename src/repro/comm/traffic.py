"""Traffic accounting for the simulated communicator.

Every transfer performed by :class:`repro.comm.SimCommunicator` is recorded
as a :class:`TransferRecord`.  Tests assert paper-level invariants directly
against these logs — e.g. that BurstAttention's backward pass moves
``3Nd + 2N`` elements per rank while RingAttention's moves ``4Nd``.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.topology import ClusterTopology, LinkClass


@dataclass(frozen=True)
class TransferRecord:
    """One point-to-point transfer.

    ``nbytes`` counts payload bytes; ``nelems`` counts array elements so that
    volume formulas stated in elements (as in the paper) can be checked
    without caring about dtype width.  ``phase`` is a free-form label such as
    ``"attn-fwd"`` or ``"attn-bwd"`` used to slice the log.  ``channel``
    distinguishes the two directions of a bidirectional ring: ``"fwd"``
    (the default, also used by every non-ring collective) or ``"rev"``
    for transfers riding the counter-rotating stream.
    """

    src: int
    dst: int
    nbytes: int
    nelems: int
    link: LinkClass
    phase: str
    tag: str = ""
    channel: str = "fwd"


@dataclass
class TrafficLog:
    """Append-only log of transfers with aggregation helpers."""

    records: list[TransferRecord] = field(default_factory=list)

    def add(self, record: TransferRecord) -> None:
        self.records.append(record)

    def clear(self) -> None:
        self.records.clear()

    # --- aggregations -------------------------------------------------------

    def _filtered(
        self,
        phase: str | None = None,
        link: LinkClass | None = None,
        rank: int | None = None,
        direction: str = "send",
        channel: str | None = None,
    ) -> list[TransferRecord]:
        if direction not in ("send", "recv"):
            raise ValueError(f"direction must be 'send' or 'recv', got {direction!r}")
        out = []
        for r in self.records:
            if phase is not None and r.phase != phase:
                continue
            if link is not None and r.link != link:
                continue
            if channel is not None and r.channel != channel:
                continue
            if rank is not None:
                endpoint = r.src if direction == "send" else r.dst
                if endpoint != rank:
                    continue
            out.append(r)
        return out

    def total_bytes(self, **kw) -> int:
        return sum(r.nbytes for r in self._filtered(**kw))

    def total_elems(self, **kw) -> int:
        return sum(r.nelems for r in self._filtered(**kw))

    def num_transfers(self, **kw) -> int:
        return len(self._filtered(**kw))

    def per_rank_send_elems(
        self, phase: str | None = None, channel: str | None = None
    ) -> dict[int, int]:
        """Elements sent by each rank (the paper's per-GPU volume metric)."""
        acc: dict[int, int] = defaultdict(int)
        for r in self._filtered(phase=phase, channel=channel):
            acc[r.src] += r.nelems
        return dict(acc)

    def per_channel_elems(self, phase: str | None = None) -> dict[str, int]:
        """Total elements moved on each ring direction ("fwd" / "rev")."""
        acc: dict[str, int] = defaultdict(int)
        for r in self._filtered(phase=phase):
            acc[r.channel] += r.nelems
        return dict(acc)

    def per_channel_bytes(self, phase: str | None = None) -> dict[str, int]:
        """Total bytes moved on each ring direction ("fwd" / "rev")."""
        acc: dict[str, int] = defaultdict(int)
        for r in self._filtered(phase=phase):
            acc[r.channel] += r.nbytes
        return dict(acc)

    def per_link_bytes(self, phase: str | None = None) -> dict[LinkClass, int]:
        acc: dict[LinkClass, int] = defaultdict(int)
        for r in self._filtered(phase=phase):
            acc[r.link] += r.nbytes
        return dict(acc)

    def phases(self) -> list[str]:
        seen: dict[str, None] = {}
        for r in self.records:
            seen.setdefault(r.phase, None)
        return list(seen)

    def summary(self) -> str:
        """Multi-line human-readable summary grouped by phase and link."""
        lines = []
        for phase in self.phases():
            per_link = self.per_link_bytes(phase=phase)
            parts = ", ".join(
                f"{link.value}: {nbytes / 1e6:.2f} MB"
                for link, nbytes in sorted(per_link.items(), key=lambda kv: kv[0].value)
            )
            lines.append(f"{phase}: {parts}")
        return "\n".join(lines) if lines else "(no traffic)"
