"""Rank-failure detection: per-op leases on a simulated clock.

A crashed or hung rank deadlocks every collective it participates in — the
surviving ranks block forever inside NCCL with no error.  Real elastic
runtimes break the deadlock with *leases*: every collective carries a
deadline, a missed deadline marks the silent rank suspected-dead, and the
survivors abort the operation with a structured error instead of waiting.

:class:`FailureDetector` reproduces that protocol deterministically.  It
wraps any communicator (typically a rank-fault injector from
:mod:`repro.resilience.rank_faults`) and guards every multi-rank operation:

1. the inner communicator executes the op and — when it is a fault
   injector — reports each participant's simulated response delay
   (:class:`OpTiming`); a plain communicator reports nothing and every
   rank is assumed to answer in :data:`NOMINAL_OP_S`;
2. ranks that answer within the current lease advance the
   :class:`SimClock` and the op completes;
3. a rank that reports *no* response (``inf`` delay) is declared dead:
   a ``crash`` surfaces after :attr:`LeaseConfig.crash_notice_s` (the
   transport sees the connection reset quickly), a ``hang`` only after the
   full :attr:`LeaseConfig.op_deadline_s` lease expires;
4. a *straggler* (finite but slow delay) gets escalating tolerance:
   each time it overruns its current lease the detector grants an
   extension that multiplies the lease by
   :attr:`LeaseConfig.escalation_factor`, up to
   :attr:`LeaseConfig.max_extensions`; only a rank too slow for the fully
   extended lease is declared dead.

All declarations raise :class:`RankFailure` naming the rank, op, phase,
training step, expired deadline and fault kind — the elastic re-planner
(:mod:`repro.resilience.elastic`) catches it, shrinks the topology and
resumes from the last checkpoint.  Every detection emits a
``failure.detect`` trace span and increments the ``resilience.rank_*``
metrics family; tolerated straggler extensions are counted too.

There is no wall-clock anywhere: delays are numbers the fault injectors
make up, so chaos runs are bit-for-bit reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.comm.traffic import TrafficLog
from repro.obs.metrics import get_registry
from repro.obs.tracer import trace_span
from repro.topology import ClusterTopology

__all__ = [
    "NOMINAL_OP_S",
    "LeaseConfig",
    "OpTiming",
    "RankFailure",
    "FailureDetector",
    "SimClock",
]

#: Simulated response time of a healthy rank for one collective.  Leases
#: are expressed in the same fictional seconds.
NOMINAL_OP_S = 1.0


class SimClock:
    """A monotonically advancing simulated clock (no wall time)."""

    def __init__(self) -> None:
        self.now = 0.0

    def advance(self, dt: float) -> float:
        if dt < 0:
            raise ValueError(f"cannot advance the clock by {dt}")
        self.now += dt
        return self.now


@dataclass(frozen=True)
class LeaseConfig:
    """Deadline policy for one guarded collective.

    With the defaults a healthy rank (:data:`NOMINAL_OP_S` = 1.0 s) has 3x
    headroom, a crash is detected in 0.5 s, a hang after the full 3 s
    lease, and a straggler is tolerated up to ``3.0 * 2**3 = 24`` s —
    24x nominal — before being declared dead.
    """

    op_deadline_s: float = 3.0
    escalation_factor: float = 2.0
    max_extensions: int = 3
    crash_notice_s: float = 0.5

    def __post_init__(self) -> None:
        if self.op_deadline_s <= 0:
            raise ValueError("op_deadline_s must be positive")
        if self.escalation_factor < 1.0:
            raise ValueError("escalation_factor must be >= 1")
        if self.max_extensions < 0:
            raise ValueError("max_extensions must be >= 0")
        if not 0 < self.crash_notice_s <= self.op_deadline_s:
            raise ValueError(
                "crash_notice_s must be in (0, op_deadline_s]"
            )

    def lease_at(self, extensions: int) -> float:
        """Lease length after ``extensions`` granted extensions."""
        return self.op_deadline_s * self.escalation_factor ** min(
            extensions, self.max_extensions
        )

    @property
    def max_lease_s(self) -> float:
        """The fully escalated lease — the straggler death threshold."""
        return self.lease_at(self.max_extensions)


@dataclass(frozen=True)
class OpTiming:
    """Per-rank simulated response delays for one collective.

    ``delays[r]`` is rank ``r``'s response time in simulated seconds
    (``inf`` = never answers); ``kinds[r]`` labels why (``"crash"`` /
    ``"hang"`` / ``"straggler"``).  Ranks absent from ``delays`` answered
    in :data:`NOMINAL_OP_S`.
    """

    delays: dict[int, float]
    kinds: dict[int, str]


class RankFailure(RuntimeError):
    """A rank missed its lease and is declared dead.

    Carries everything the elastic re-planner needs: the dead ``rank``,
    the ``op``/``phase`` it went silent in, the training ``step`` (-1
    outside a training loop), the expired ``deadline`` in simulated
    seconds, the detection ``sim_time``, and the fault ``kind``.
    """

    def __init__(
        self,
        *,
        rank: int,
        op: str,
        phase: str,
        step: int,
        deadline: float,
        kind: str = "crash",
        sim_time: float = 0.0,
        call_index: int = 0,
    ):
        self.rank = rank
        self.op = op
        self.phase = phase
        self.step = step
        self.deadline = deadline
        self.kind = kind
        self.sim_time = sim_time
        self.call_index = call_index
        super().__init__(
            f"rank {rank} declared dead ({kind}): missed the {deadline:g}s "
            f"lease on op={op!r} phase={phase!r} step={step} "
            f"(guarded call #{call_index}, t={sim_time:g}s)"
        )


class FailureDetector:
    """Lease-guarded communicator wrapper; raises instead of deadlocking.

    Duck-types the full :class:`~repro.comm.SimCommunicator` API.  Every
    multi-rank op is guarded; attribute access not intercepted here
    (``log``, helpers, …) passes through to the wrapped ``inner``
    communicator.  Compose freely: a
    :class:`~repro.resilience.comm.ResilientCommunicator` can wrap a
    detector that wraps a fault injector, layering message-level and
    rank-level recovery.
    """

    def __init__(
        self,
        inner,
        *,
        lease: LeaseConfig | None = None,
        clock: SimClock | None = None,
    ):
        self.inner = inner
        self.lease = lease if lease is not None else LeaseConfig()
        self.clock = clock if clock is not None else SimClock()
        self.call_index = 0
        self.step = -1
        #: straggler lease extensions granted so far, per rank
        self.extensions: dict[int, int] = {}
        #: tolerated-straggler events ``(rank, op, extensions_now)``
        self.tolerated: list[tuple[int, str, int]] = []

    @property
    def topology(self) -> ClusterTopology:
        return self.inner.topology

    @property
    def log(self) -> TrafficLog:
        return self.inner.log

    @property
    def world_size(self) -> int:
        return self.inner.world_size

    def __getattr__(self, name: str):
        return getattr(self.inner, name)

    # --- step bookkeeping ---------------------------------------------------

    def on_step_start(self, step: int) -> None:
        """Trainer hook: label subsequent failures with the step number."""
        self.step = step
        forward = getattr(self.inner, "on_step_start", None)
        if forward is not None:
            forward(step)

    # --- the lease guard ----------------------------------------------------

    def _declare_dead(
        self, rank: int, op: str, phase: str, kind: str, deadline: float,
        channel: str = "fwd",
    ) -> None:
        self.clock.advance(deadline)
        reg = get_registry()
        reg.counter("resilience.rank_failures").inc(kind=kind, op=op)
        reg.counter("resilience.rank_failures_by_rank").inc(rank=rank)
        with trace_span(
            "failure.detect", phase="resilience", rank=rank,
            op=op, kind=kind, step=self.step, deadline=deadline,
            logical=phase, sim_wait_s=deadline, call=self.call_index,
            channel=channel,
        ):
            pass
        from repro.obs.flightrec import notify_failure

        notify_failure(
            {
                "kind": kind, "type": "RankFailure", "rank": rank,
                "op": op, "logical": phase, "step": self.step,
                "deadline_s": deadline, "call_index": self.call_index,
                "channel": channel,
            },
            detector=self,
        )
        raise RankFailure(
            rank=rank, op=op, phase=phase, step=self.step,
            deadline=deadline, kind=kind, sim_time=self.clock.now,
            call_index=self.call_index,
        )

    def _guard(
        self, op: str, phase: str, participants: Sequence[int], issue,
        channel: str = "fwd",
    ):
        """Issue the op, then apply the lease protocol to its timing."""
        self.call_index += 1
        out = issue()
        taker = getattr(self.inner, "pop_op_timing", None)
        timing: OpTiming | None = taker() if taker is not None else None
        if timing is None:
            self.clock.advance(NOMINAL_OP_S)
            return out
        members = set(participants)
        completion = NOMINAL_OP_S
        slowest: int | None = None
        for rank, delay in sorted(timing.delays.items()):
            if rank not in members:
                continue
            kind = timing.kinds.get(rank, "crash")
            if delay == float("inf"):
                # A crashed peer resets the connection — the transport
                # notices fast; a hung peer stays silent for the full lease.
                deadline = (
                    self.lease.crash_notice_s if kind == "crash"
                    else self.lease.op_deadline_s
                )
                self._declare_dead(rank, op, phase, kind, deadline, channel)
            # Straggler: extend the lease while extensions remain.
            used = self.extensions.get(rank, 0)
            while delay > self.lease.lease_at(used):
                if used >= self.lease.max_extensions:
                    self._declare_dead(
                        rank, op, phase, kind, self.lease.lease_at(used),
                        channel,
                    )
                used += 1
                self.extensions[rank] = used
                self.tolerated.append((rank, op, used))
                get_registry().counter(
                    "resilience.rank_lease_extensions"
                ).inc(rank=rank)
                with trace_span(
                    "lease.extend", phase="resilience", rank=rank,
                    op=op, kind=kind, step=self.step, logical=phase,
                    extensions=used, lease_s=self.lease.lease_at(used),
                    channel=channel,
                ):
                    pass
            if delay > completion:
                completion = delay
                slowest = rank
        if completion > NOMINAL_OP_S:
            # The whole collective waited on the slowest participant —
            # simulated stall seconds the attribution charges as exposed.
            with trace_span(
                "lease.wait", phase="resilience", rank=slowest,
                op=op, step=self.step, logical=phase, channel=channel,
                sim_wait_s=completion - NOMINAL_OP_S,
            ):
                pass
        self.clock.advance(completion)
        return out

    # --- guarded communicator API -------------------------------------------

    def ring_shift(self, bufs, ring, *, phase, tag="", reverse=False):
        return self._guard(
            "ring_shift", phase, list(ring),
            lambda: self.inner.ring_shift(
                bufs, ring, phase=phase, tag=tag, reverse=reverse
            ),
            "rev" if reverse else "fwd",
        )

    def exchange(self, bufs, dest_of, *, phase, tag="", channel="fwd"):
        return self._guard(
            "exchange", phase, range(self.world_size),
            lambda: self.inner.exchange(
                bufs, dest_of, phase=phase, tag=tag, channel=channel
            ),
            channel,
        )

    def all_to_all(self, chunks, *, phase, tag=""):
        return self._guard(
            "all_to_all", phase, range(self.world_size),
            lambda: self.inner.all_to_all(chunks, phase=phase, tag=tag),
        )

    def group_all_to_all(self, chunks, groups, *, phase, tag=""):
        members = [r for grp in groups for r in grp]
        return self._guard(
            "group_all_to_all", phase, members,
            lambda: self.inner.group_all_to_all(
                chunks, groups, phase=phase, tag=tag
            ),
        )

    def send(self, src, dst, payload, *, phase, tag=""):
        return self._guard(
            "send", phase, (src, dst),
            lambda: self.inner.send(src, dst, payload, phase=phase, tag=tag),
        )

    def all_gather(self, shards, *, axis=0, phase, tag=""):
        return self._guard(
            "all_gather", phase, range(self.world_size),
            lambda: self.inner.all_gather(
                shards, axis=axis, phase=phase, tag=tag
            ),
        )

    def reduce_scatter(self, contributions, *, phase, tag=""):
        return self._guard(
            "reduce_scatter", phase, range(self.world_size),
            lambda: self.inner.reduce_scatter(
                contributions, phase=phase, tag=tag
            ),
        )

    def all_reduce(self, bufs, *, phase, tag=""):
        return self._guard(
            "all_reduce", phase, range(self.world_size),
            lambda: self.inner.all_reduce(bufs, phase=phase, tag=tag),
        )

    def broadcast(self, buf, root, *, phase, tag=""):
        return self._guard(
            "broadcast", phase, range(self.world_size),
            lambda: self.inner.broadcast(buf, root, phase=phase, tag=tag),
        )
