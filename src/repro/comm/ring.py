"""Ring communication schedules: flat global ring vs topology-aware rings.

A *ring schedule* describes, for a G-step ring attention pass, which
permutation moves the circulating buffers between consecutive compute
steps.  Two schedules are provided:

* :func:`global_ring_schedule` — the flat ring of RingAttention.  With
  node-major rank placement every hop from the last GPU of one node to the
  first GPU of the next crosses the inter-node network, and since the ring
  advances in lockstep, every step is gated by the slowest (inter-node)
  link.

* :func:`double_ring_schedule` — the topology-aware scheme of
  DoubleRing / BurstAttention.  Buffers first circulate inside each node
  over NVLink (``gpus_per_node - 1`` intra transitions per round), then one
  inter-node transition moves each rank's buffer to the peer rank on the
  next node.  The inter-node transition runs one ring *per local rank*, so
  all NICs of a node carry traffic concurrently.

The schedule is purely a communication pattern; both the exact-numerics
attention implementations and the DES performance model consume it, which
guarantees they agree on who talks to whom at every step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.comm.communicator import SimCommunicator
from repro.obs.tracer import trace_span, tracing_enabled
from repro.topology import ClusterTopology, LinkClass


@dataclass(frozen=True)
class RingSchedule:
    """A sequence of ring transitions covering all G partitions.

    Attributes
    ----------
    topology:
        The cluster the schedule is built for.
    transitions:
        ``transitions[t]`` is the list of rings to shift along when moving
        from compute step ``t`` to step ``t + 1``
        (``len(transitions) == G - 1``).  Each listed ring is shifted once;
        rings within one transition are disjoint and run concurrently on
        real hardware.
    name:
        Human-readable identifier (``"global-ring"`` / ``"double-ring"``).
    """

    topology: ClusterTopology
    transitions: tuple[tuple[tuple[int, ...], ...], ...]
    name: str

    @property
    def num_steps(self) -> int:
        """Number of compute steps (= world size G)."""
        return len(self.transitions) + 1

    def transition_link_class(self, t: int) -> LinkClass:
        """Slowest link class used by transition ``t``.

        A lockstep transition is gated by its slowest hop: a flat global
        ring that crosses a node boundary anywhere is inter-node-bound
        even though most of its hops ride NVLink.
        """
        worst = LinkClass.LOCAL
        for ring in self.transitions[t]:
            k = len(ring)
            for pos in range(k):
                cls = self.topology.link_class(ring[pos], ring[(pos + 1) % k])
                if cls is LinkClass.INTER:
                    return LinkClass.INTER
                if cls is LinkClass.INTRA:
                    worst = LinkClass.INTRA
        return worst

    def apply(
        self,
        comm: SimCommunicator,
        bufs: Sequence[object],
        t: int,
        *,
        phase: str,
        tag: str = "",
    ) -> list[object]:
        """Perform transition ``t`` on per-rank buffers through ``comm``."""
        if not tracing_enabled():
            out = list(bufs)
            for ring in self.transitions[t]:
                out = comm.ring_shift(out, list(ring), phase=phase, tag=tag or self.name)
            return out
        # Each transition becomes a span on the "intra-ring" / "inter-ring"
        # row matching the DES resource its time is modeled on.
        link = self.transition_link_class(t)
        row = "inter-ring" if link is LinkClass.INTER else "intra-ring"
        with trace_span("ring.transition", phase=row, schedule=self.name,
                        step=t, logical=phase, rings=len(self.transitions[t])):
            out = list(bufs)
            for ring in self.transitions[t]:
                out = comm.ring_shift(out, list(ring), phase=phase, tag=tag or self.name)
            return out

    def origins(self) -> list[list[int]]:
        """``origins()[t][rank]`` = the rank whose step-0 buffer ``rank``
        holds at compute step ``t``.

        This is what the attention implementations use to decide which KV
        (or Q) partition they are looking at — and hence which causal-mask
        case of Eq. (12)/(14) applies.
        """
        g = self.topology.world_size
        current = list(range(g))
        result = [list(current)]
        for t in range(len(self.transitions)):
            nxt = list(current)
            for ring in self.transitions[t]:
                k = len(ring)
                for pos in range(k):
                    src = ring[pos]
                    dst = ring[(pos + 1) % k]
                    nxt[dst] = current[src]
            current = nxt
            result.append(list(current))
        return result

    def validate(self) -> None:
        """Check the schedule is a proper cover: every rank sees
        ``num_steps`` *distinct* origins (for world-spanning schedules that
        means every rank's buffer exactly once; for grouped schedules, every
        member of the rank's ring)."""
        g = self.topology.world_size
        origins = self.origins()
        steps = self.num_steps
        for rank in range(g):
            seen = [origins[t][rank] for t in range(steps)]
            if len(set(seen)) != steps:
                raise ValueError(
                    f"rank {rank} sees duplicate origins over {steps} steps: {seen}"
                )

    def return_permutation(self) -> list[int]:
        """Destination map that sends each circulating buffer back to its
        origin after the last compute step.

        ``dest_of[rank] = origins[-1][rank]`` — for the flat global ring
        this is simply one more ring hop, which is why Algorithms 1 and 2
        of the paper run ``G`` communication rounds rather than ``G - 1``.
        """
        final = self.origins()[-1]
        return list(final)

    # --- bidirectional (counter-rotating) transport ---------------------------

    def reverse_seed_permutation(self) -> list[int]:
        """Destination map of the first reverse move: the inverse of
        :meth:`return_permutation`, jumping each rank's buffer straight to
        the placement of the *last* compute step (``origins[-1]``).

        For the flat global ring this is a single hop against the ring
        direction; for the double ring it is in general a mixed
        inner+outer diagonal, which is why it is realised as a generic
        ``exchange`` rather than a ring shift.
        """
        perm = self.return_permutation()
        inv = [0] * len(perm)
        for dst, src in enumerate(perm):
            inv[src] = dst
        return inv

    def reverse_link_class(self, s: int) -> LinkClass:
        """Slowest link class used by reverse move ``s`` (1-based).

        Move 1 is the seed permutation; move ``s >= 2`` retraces base
        transition ``num_steps - s`` against its ring direction (same
        links, opposite flow), so it inherits that transition's class.
        """
        if not 1 <= s <= self.num_steps - 1:
            raise ValueError(f"reverse move {s} out of range 1..{self.num_steps - 1}")
        if s > 1:
            return self.transition_link_class(self.num_steps - s)
        worst = LinkClass.LOCAL
        for dst, src in enumerate(self.return_permutation()):
            if src == dst:
                continue
            cls = self.topology.link_class(src, dst)
            if cls is LinkClass.INTER:
                return LinkClass.INTER
            if cls is LinkClass.INTRA:
                worst = LinkClass.INTRA
        return worst

    def apply_reverse(
        self,
        comm: SimCommunicator,
        bufs: Sequence[object],
        s: int,
        *,
        phase: str,
        tag: str = "",
    ) -> list[object]:
        """Perform reverse move ``s`` (1-based) of the counter-rotating
        stream: after move ``s`` the buffers sit at ``origins[S - s]``
        (``S = num_steps``), i.e. the stream walks the visit order of the
        forward circulation backwards.  Move 1 applies
        :meth:`reverse_seed_permutation`; move ``s >= 2`` undoes base
        transition ``S - s`` by shifting its rings in reverse.
        """
        if not 1 <= s <= self.num_steps - 1:
            raise ValueError(f"reverse move {s} out of range 1..{self.num_steps - 1}")
        if not tracing_enabled():
            return self._apply_reverse_raw(comm, bufs, s, phase, tag)
        link = self.reverse_link_class(s)
        row = "inter-ring" if link is LinkClass.INTER else "intra-ring"
        rings = 1 if s == 1 else len(self.transitions[self.num_steps - s])
        with trace_span("ring.transition", phase=row, schedule=self.name,
                        step=self.num_steps - s, logical=phase, rings=rings,
                        direction="rev"):
            return self._apply_reverse_raw(comm, bufs, s, phase, tag)

    def _apply_reverse_raw(
        self,
        comm: SimCommunicator,
        bufs: Sequence[object],
        s: int,
        phase: str,
        tag: str,
    ) -> list[object]:
        if s == 1:
            return comm.exchange(
                bufs, self.reverse_seed_permutation(), phase=phase,
                tag=tag or self.name, channel="rev",
            )
        out = list(bufs)
        for ring in self.transitions[self.num_steps - s]:
            out = comm.ring_shift(
                out, list(ring), phase=phase, tag=tag or self.name, reverse=True
            )
        return out


def global_ring_schedule(topology: ClusterTopology) -> RingSchedule:
    """The flat ring used by RingAttention: one global shift per transition."""
    ring = tuple(topology.global_ring())
    g = topology.world_size
    transitions = tuple((ring,) for _ in range(g - 1))
    return RingSchedule(topology=topology, transitions=transitions, name="global-ring")


def grouped_ring_schedule(
    topology: ClusterTopology, rings: Sequence[Sequence[int]]
) -> RingSchedule:
    """Parallel independent rings (USP's context-parallel dimension).

    ``rings`` must be equal-length and disjoint; each transition shifts all
    of them at once, so the schedule has ``len(rings[0]) - 1`` transitions.
    Every rank only ever sees origins from its own ring.
    """
    if not rings:
        raise ValueError("need at least one ring")
    length = len(rings[0])
    if any(len(r) != length for r in rings):
        raise ValueError("all rings must have the same length")
    flat = [r for ring in rings for r in ring]
    if len(set(flat)) != len(flat):
        raise ValueError("rings must be disjoint")
    frozen = tuple(tuple(r) for r in rings)
    transitions = tuple(frozen for _ in range(length - 1))
    schedule = RingSchedule(
        topology=topology, transitions=transitions, name="grouped-ring"
    )
    schedule.validate()
    return schedule


def double_ring_schedule(
    topology: ClusterTopology, window: int | None = None
) -> RingSchedule:
    """Topology-aware two-level ring (DoubleRing / BurstAttention).

    The world is grouped into inner rings of ``window`` consecutive ranks
    (default: one node, the paper's placement); transition ``t`` is an
    inner shift unless ``t`` is a multiple of ``window``, in which case the
    outer rings (one per inner position, stride ``window``) shift —
    on node-aligned windows that drives one NIC per GPU concurrently.

    ``window`` is LoongTrain's tunable inner-ring size: smaller windows
    cross the outer (slower) links more often, larger-than-node windows
    put "inner" hops on the inter-node network.  The node-aligned default
    is optimal, which ``tests/test_ring_window.py`` checks against the DES.

    Degenerates to the global ring for ``window == world`` and to a pure
    outer ring for ``window == 1``.
    """
    world = topology.world_size
    w = window if window is not None else topology.gpus_per_node
    if w < 1 or world % w != 0:
        raise ValueError(
            f"window {w} must be a positive divisor of world size {world}"
        )
    n_groups = world // w
    inner = tuple(
        tuple(range(grp * w, (grp + 1) * w)) for grp in range(n_groups)
    )
    outer = tuple(
        tuple(range(pos, world, w)) for pos in range(w)
    )
    transitions: list[tuple[tuple[int, ...], ...]] = []
    for t in range(1, world):
        if w > 1 and t % w != 0:
            transitions.append(inner)
        else:
            transitions.append(outer)
    schedule = RingSchedule(
        topology=topology, transitions=tuple(transitions), name="double-ring"
    )
    schedule.validate()
    return schedule


# --- bidirectional transport ---------------------------------------------------

#: Valid values of the ``ring_mode`` switch on ring-family methods.
RING_MODES = ("unidirectional", "bidirectional")


def check_ring_mode(ring_mode: str) -> str:
    if ring_mode not in RING_MODES:
        raise ValueError(
            f"unknown ring_mode {ring_mode!r}; options: {RING_MODES}"
        )
    return ring_mode


def bidirectional_split(num_steps: int) -> tuple[int, int]:
    """``(forward, reverse)`` transition counts of the bidirectional split.

    Of the ``S - 1`` placements a circulating read-only buffer must visit
    beyond its home, the forward stream serves the first
    ``ceil((S - 1) / 2)`` compute steps and the counter-rotating stream the
    remaining ``floor((S - 1) / 2)``, meeting in the middle (TokenRing's
    halving of the serial hop chain).
    """
    return num_steps // 2, (num_steps - 1) // 2


class BidirectionalFlow:
    """Counter-rotating delivery of a schedule's *read-only* bundles.

    The forward circulation (and with it the compute order, the online-
    softmax merge order, and any gradient accumulation) is untouched — the
    caller keeps driving :meth:`RingSchedule.apply` for whatever must ride
    forward.  This helper runs the second direction: it seeds a copy of the
    read-only bundles, walks them backwards through the visit order via
    :meth:`RingSchedule.apply_reverse`, and stashes each delivery until the
    compute step that consumes it.  Reverse move ``s`` lands at boundary
    ``s - 1``, strictly before its consuming step ``S - s``, so every
    delivery is on time.

    Usage, per pass::

        flow = BidirectionalFlow(comm, schedule, ro_bufs, phase=..., tag=...)
        for t in 1..S-1:
            # caller shifts forward-stream bundles for boundary t-1 itself
            flow.poststep(t - 1)
            ro = flow.delivered(t)   # None -> read from the forward stream
    """

    def __init__(
        self,
        comm: SimCommunicator,
        schedule: RingSchedule,
        bufs: Sequence[object],
        *,
        phase: str,
        tag: str = "",
    ):
        self.comm = comm
        self.schedule = schedule
        self.phase = phase
        self.tag = tag
        self.forward_transitions, self.reverse_transitions = bidirectional_split(
            schedule.num_steps
        )
        self._rev = list(bufs)
        self._stash: dict[int, list[object]] = {}

    def poststep(self, t: int) -> None:
        """Advance the reverse stream at boundary ``t`` (after compute
        step ``t``); a no-op once all reverse moves have run."""
        s = t + 1
        if s <= self.reverse_transitions:
            self._rev = self.schedule.apply_reverse(
                self.comm, self._rev, s, phase=self.phase, tag=self.tag
            )
            self._stash[self.schedule.num_steps - s] = self._rev

    def delivered(self, t: int) -> list[object] | None:
        """Read-only bundles for compute step ``t`` if the reverse stream
        serves it (``t > forward_transitions``), else ``None`` — the caller
        reads them off the forward stream."""
        return self._stash.get(t)
