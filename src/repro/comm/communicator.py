"""The simulated SPMD communicator.

:class:`SimCommunicator` executes collective operations for *all* ranks at
once.  Per-rank data is passed as a list indexed by global rank; each entry
may be a numpy array or any pytree of arrays (tuples/lists/dicts).  The
communicator both moves the data (copying, so sender buffers can be reused
exactly as with real double-buffered NCCL transfers) and appends one
:class:`~repro.comm.traffic.TransferRecord` per point-to-point hop.

Collectives that real NCCL implements with ring algorithms (all-gather,
reduce-scatter, all-reduce) are *logged* as their ring realisations so the
recorded per-link traffic matches what the hardware would carry, while the
numerics are computed directly.
"""

from __future__ import annotations

import functools
import itertools
from typing import Sequence

import numpy as np

from repro.comm.traffic import TrafficLog, TransferRecord
from repro.obs.tracer import NOOP_SPAN, trace_span
from repro.topology import ClusterTopology, LinkClass
from repro.utils.pytree import tree_flatten, tree_map, tree_unflatten


#: Process-wide issue order of traced communicator ops; gives every
#: ``comm.*`` span a monotonically increasing ``call`` attribute so the
#: flow-event deriver (:mod:`repro.obs.flow`) can chain producer→consumer
#: edges deterministically even when wall-clock timestamps tie.
_CALL_SEQ = itertools.count(1)


def _traced_op(op: str):
    """Wrap a communicator op in a ``comm.<op>`` span when tracing is on.

    The disabled path is one flag check inside :func:`trace_span`; when
    enabled, the span records the logical phase/tag plus the bytes and
    hop count the op appended to the traffic log, and the causal-DAG key
    attributes (``op``, ``channel``, ``call``) the flow-event exporter
    chains into Chrome-trace ``s``/``f`` arrows.
    """

    def deco(fn):
        @functools.wraps(fn)
        def wrapper(self, *args, phase, tag="", **kwargs):
            span = trace_span(f"comm.{op}", phase="comm", logical=phase, tag=tag)
            if span is NOOP_SPAN:
                return fn(self, *args, phase=phase, tag=tag, **kwargs)
            mark = len(self.log.records)
            with span:
                out = fn(self, *args, phase=phase, tag=tag, **kwargs)
                new = self.log.records[mark:]
                span["transfers"] = len(new)
                span["nbytes"] = sum(r.nbytes for r in new)
                span["op"] = op
                span["channel"] = kwargs.get("channel") or (
                    "rev" if kwargs.get("reverse") else "fwd"
                )
                span["call"] = next(_CALL_SEQ)
            return out

        return wrapper

    return deco


class SimCommunicator:
    """Single-process stand-in for a NCCL/MPI communicator.

    Parameters
    ----------
    topology:
        Cluster layout used to classify each hop as intra- or inter-node.
    log:
        Optional shared :class:`TrafficLog`; a fresh one is created if
        omitted and is available as :attr:`log`.
    """

    def __init__(self, topology: ClusterTopology, log: TrafficLog | None = None):
        self.topology = topology
        self.log = log if log is not None else TrafficLog()

    @property
    def world_size(self) -> int:
        return self.topology.world_size

    # --- internals -----------------------------------------------------------

    def _check_bufs(self, bufs: Sequence[object]) -> None:
        if len(bufs) != self.world_size:
            raise ValueError(
                f"expected one buffer per rank ({self.world_size}), got {len(bufs)}"
            )

    def _record(
        self,
        src: int,
        dst: int,
        tree: object,
        phase: str,
        tag: str,
        channel: str = "fwd",
    ) -> None:
        leaves, _ = tree_flatten(tree)
        nbytes = sum(leaf.nbytes for leaf in leaves)
        nelems = sum(leaf.size for leaf in leaves)
        self.log.add(
            TransferRecord(
                src=src,
                dst=dst,
                nbytes=nbytes,
                nelems=nelems,
                link=self.topology.link_class(src, dst),
                phase=phase,
                tag=tag,
                channel=channel,
            )
        )

    # --- point-to-point --------------------------------------------------------

    @_traced_op("send")
    def send(
        self,
        src: int,
        dst: int,
        payload: object,
        *,
        phase: str,
        tag: str = "",
    ) -> object:
        """Single point-to-point transfer; returns the received copy.

        Used by selective (sparsity-aware) communication patterns that
        fetch only the shards a mask actually needs, instead of ring-
        circulating everything.
        """
        if not 0 <= src < self.world_size or not 0 <= dst < self.world_size:
            raise ValueError(f"rank out of range: {src} -> {dst}")
        if src != dst:
            self._record(src, dst, payload, phase, tag or "p2p")
        return tree_map(np.copy, payload)

    @_traced_op("exchange")
    def exchange(
        self,
        bufs: Sequence[object],
        dest_of: Sequence[int],
        *,
        phase: str,
        tag: str = "",
        channel: str = "fwd",
    ) -> list[object]:
        """Generic permutation send: rank ``r`` sends its buffer to
        ``dest_of[r]``.  ``dest_of`` must be a permutation of the ranks.
        Returns the received buffer per rank (deep-copied).  ``channel``
        attributes the transfers to a ring direction in the traffic log.
        """
        self._check_bufs(bufs)
        if sorted(dest_of) != list(range(self.world_size)):
            raise ValueError("dest_of must be a permutation of all ranks")
        received: list[object] = [None] * self.world_size
        for src, dst in enumerate(dest_of):
            if src != dst:
                self._record(src, dst, bufs[src], phase, tag, channel=channel)
            received[dst] = tree_map(np.copy, bufs[src])
        return received

    # --- ring primitives ---------------------------------------------------------

    @_traced_op("ring_shift")
    def ring_shift(
        self,
        bufs: Sequence[object],
        ring: Sequence[int],
        *,
        phase: str,
        tag: str = "",
        reverse: bool = False,
    ) -> list[object]:
        """One ring step along ``ring``: each listed rank sends its buffer to
        its successor in the ring and receives from its predecessor.  Ranks
        not in ``ring`` keep their buffers untouched (identity, no copy).

        With ``reverse=True`` the data flows the other way — each rank sends
        to its *predecessor* — exactly inverting the forward step.  Reverse
        transfers are attributed to the ``"rev"`` channel in the traffic
        log, modelling the second direction of a full-duplex P2P link.
        """
        self._check_bufs(bufs)
        k = len(ring)
        if k != len(set(ring)):
            raise ValueError("ring contains duplicate ranks")
        step = -1 if reverse else 1
        channel = "rev" if reverse else "fwd"
        out: list[object] = list(bufs)
        for pos in range(k):
            src = ring[pos]
            dst = ring[(pos + step) % k]
            if src != dst:
                self._record(src, dst, bufs[src], phase, tag, channel=channel)
            out[dst] = tree_map(np.copy, bufs[src])
        return out

    # --- collectives ---------------------------------------------------------

    @_traced_op("all_gather")
    def all_gather(
        self,
        shards: Sequence[np.ndarray],
        *,
        axis: int = 0,
        phase: str,
        tag: str = "",
    ) -> list[np.ndarray]:
        """All-gather along ``axis`` using the ring realisation for logging.

        Every rank receives ``concat(shards, axis)``.  The ring algorithm
        forwards each shard ``G - 1`` hops, which is what gets logged.
        """
        self._check_bufs(shards)
        g = self.world_size
        ring = self.topology.global_ring()
        # Ring all-gather: at step t, rank ring[p] sends the shard that
        # originated at ring[(p - t) % g] to ring[(p + 1) % g].
        for t in range(g - 1):
            for p in range(g):
                src = ring[p]
                dst = ring[(p + 1) % g]
                origin = ring[(p - t) % g]
                if src != dst:
                    self._record(src, dst, shards[origin], phase, tag or "all_gather")
        full = np.concatenate(list(shards), axis=axis)
        return [full.copy() for _ in range(g)]

    @_traced_op("reduce_scatter")
    def reduce_scatter(
        self,
        contributions: Sequence[Sequence[np.ndarray]],
        *,
        phase: str,
        tag: str = "",
    ) -> list[np.ndarray]:
        """Reduce-scatter with summation.

        ``contributions[r][j]`` is rank ``r``'s addend destined for rank
        ``j``.  Rank ``j`` receives ``sum_r contributions[r][j]``.  Logged as
        the ring realisation: each rank sends ``G - 1`` partial chunks.
        """
        self._check_bufs(contributions)
        g = self.world_size
        for r, chunks in enumerate(contributions):
            if len(chunks) != g:
                raise ValueError(
                    f"rank {r} contributed {len(chunks)} chunks, expected {g}"
                )
        ring = self.topology.global_ring()
        # Ring reduce-scatter: at step t, rank ring[p] sends the partial sum
        # for destination ring[(p - t) % g] onward.
        for t in range(g - 1):
            for p in range(g):
                src = ring[p]
                dst = ring[(p + 1) % g]
                dest_chunk = ring[(p - t) % g]
                if src != dst:
                    self._record(
                        src, dst, contributions[src][dest_chunk], phase,
                        tag or "reduce_scatter",
                    )
        out: list[np.ndarray] = []
        for j in range(g):
            acc = np.zeros_like(contributions[0][j])
            for r in range(g):
                acc = acc + contributions[r][j]
            out.append(acc)
        return out

    @_traced_op("all_reduce")
    def all_reduce(
        self,
        bufs: Sequence[np.ndarray],
        *,
        phase: str,
        tag: str = "",
    ) -> list[np.ndarray]:
        """Sum all-reduce, logged as ring reduce-scatter + all-gather."""
        self._check_bufs(bufs)
        g = self.world_size
        total = np.zeros_like(bufs[0])
        for buf in bufs:
            if buf.shape != bufs[0].shape:
                raise ValueError("all_reduce requires identical shapes on all ranks")
            total = total + buf
        # Ring all-reduce traffic: each rank sends 2 * (G - 1) chunks of
        # size |buf| / G.
        ring = self.topology.global_ring()
        chunk_template = [np.empty(0)] * g
        for t in range(2 * (g - 1)):
            for p in range(g):
                src = ring[p]
                dst = ring[(p + 1) % g]
                if src == dst:
                    continue
                nbytes = bufs[src].nbytes // g
                nelems = bufs[src].size // g
                self.log.add(
                    TransferRecord(
                        src=src,
                        dst=dst,
                        nbytes=nbytes,
                        nelems=nelems,
                        link=self.topology.link_class(src, dst),
                        phase=phase,
                        tag=tag or "all_reduce",
                    )
                )
        return [total.copy() for _ in range(g)]

    @_traced_op("all_to_all")
    def all_to_all(
        self,
        chunks: Sequence[Sequence[object]],
        *,
        phase: str,
        tag: str = "",
    ) -> list[list[object]]:
        """All-to-all: rank ``j`` receives ``[chunks[0][j], ..., chunks[G-1][j]]``.

        This is the collective at the heart of DeepSpeed-Ulysses head
        parallelism.  Every off-diagonal chunk is one logged transfer.
        """
        self._check_bufs(chunks)
        g = self.world_size
        for r, row in enumerate(chunks):
            if len(row) != g:
                raise ValueError(f"rank {r} provided {len(row)} chunks, expected {g}")
        out: list[list[object]] = [[None] * g for _ in range(g)]
        for src in range(g):
            for dst in range(g):
                if src != dst:
                    self._record(src, dst, chunks[src][dst], phase, tag or "all_to_all")
                out[dst][src] = tree_map(np.copy, chunks[src][dst])
        return out

    @_traced_op("group_all_to_all")
    def group_all_to_all(
        self,
        chunks: Sequence[Sequence[object]],
        groups: Sequence[Sequence[int]],
        *,
        phase: str,
        tag: str = "",
    ) -> list[list[object]]:
        """All-to-all restricted to disjoint rank groups.

        ``groups`` partitions (a subset of) the ranks; rank ``r`` in a group
        of size ``u`` provides ``chunks[r]`` with ``u`` entries and receives
        the ``u`` chunks addressed to it by its group peers (ordered by
        position in the group).  This is the collective DeepSpeed-Ulysses
        runs inside each head-parallel group.
        """
        self._check_bufs(chunks)
        seen: set[int] = set()
        for grp in groups:
            for r in grp:
                if r in seen:
                    raise ValueError(f"rank {r} appears in multiple groups")
                seen.add(r)
        out: list[list[object]] = [None] * self.world_size  # type: ignore[list-item]
        for grp in groups:
            u = len(grp)
            for pos, r in enumerate(grp):
                if len(chunks[r]) != u:
                    raise ValueError(
                        f"rank {r} provided {len(chunks[r])} chunks for a "
                        f"group of size {u}"
                    )
            for dst_pos, dst in enumerate(grp):
                row = []
                for src_pos, src in enumerate(grp):
                    if src != dst:
                        self._record(
                            src, dst, chunks[src][dst_pos], phase,
                            tag or "group_all_to_all",
                        )
                    row.append(tree_map(np.copy, chunks[src][dst_pos]))
                out[dst] = row
        return out

    @_traced_op("broadcast")
    def broadcast(
        self,
        buf: np.ndarray,
        root: int,
        *,
        phase: str,
        tag: str = "",
    ) -> list[np.ndarray]:
        """Broadcast from ``root``; logged as a ring pipeline (G - 1 hops)."""
        g = self.world_size
        ring = self.topology.global_ring()
        start = ring.index(root)
        for off in range(g - 1):
            src = ring[(start + off) % g]
            dst = ring[(start + off + 1) % g]
            if src != dst:
                self._record(src, dst, buf, phase, tag or "broadcast")
        return [buf.copy() for _ in range(g)]
