"""Rank-scoped fault injectors: crash, hang, and straggler on tap.

The PR-1 injectors (:mod:`repro.testing.faults`) damage *messages*; the
classes here kill or slow down *ranks* — the dominant availability risk of
month-long multi-node runs.  Each wraps :class:`~repro.comm.SimCommunicator`
and shares the PR-1 targeting model (``op`` / ``phase`` / ``tag`` substring
filters, 1-based ``at_call``, plus a rank-level ``at_step`` trigger fed by
the trainer's ``on_step_start`` notification).  Once triggered the victim
``rank`` is failed *permanently* — a crashed process does not come back —
and every subsequent operation it participates in reports the failure
through an :class:`~repro.comm.OpTiming` record:

===========================  =================================================
:class:`CrashRankComm`       the rank's process dies: no response, ever
                             (``inf`` delay, kind ``"crash"``) — peers see
                             the connection reset quickly
:class:`HangRankComm`        the rank wedges (GC pause, driver livelock):
                             no response and **no error** (``inf`` delay,
                             kind ``"hang"``) — peers must wait out the lease
:class:`StragglerRankComm`   the rank answers ``slowdown_factor`` x slower
                             than :data:`~repro.comm.NOMINAL_OP_S` — mild
                             slowdowns are tolerated by lease escalation,
                             extreme ones get the rank declared dead
===========================  =================================================

Numerics are untouched: a :class:`~repro.comm.FailureDetector` wrapping the
injector raises :class:`~repro.comm.RankFailure` before a dead rank's data
is ever consumed, exactly as survivors abort a collective in a real
elastic runtime.  Without a detector the injected failures are invisible —
which is the deadlock these classes exist to prove the detector prevents.
"""

from __future__ import annotations

from repro.comm import NOMINAL_OP_S, OpTiming, SimCommunicator
from repro.topology import ClusterTopology

__all__ = [
    "RANK_FAULT_REGISTRY",
    "RankFaultComm",
    "CrashRankComm",
    "HangRankComm",
    "StragglerRankComm",
    "make_rank_fault",
]


class RankFaultComm(SimCommunicator):
    """Base class: fails one rank when the targeting filters first match.

    Parameters
    ----------
    rank:
        The global rank to fail.
    phase, tag, op:
        Substring filters on the operation labels (``None`` = match all).
    at_call:
        1-based index of the matching call that triggers the failure;
        ``None`` triggers on the first match.
    at_step:
        Training step the failure is confined to (requires the caller to
        forward ``on_step_start``); ``None`` means any step.
    """

    fault_name = "rank-base"
    kind = "crash"

    def __init__(
        self,
        topology: ClusterTopology,
        *,
        rank: int = 0,
        phase: str | None = None,
        tag: str | None = None,
        op: str | None = None,
        at_call: int | None = 1,
        at_step: int | None = None,
        log=None,
    ):
        super().__init__(topology, log=log)
        if not 0 <= rank < topology.world_size:
            raise ValueError(
                f"victim rank {rank} out of range [0, {topology.world_size})"
            )
        self.rank = rank
        self.target_phase = phase
        self.target_tag = tag
        self.target_op = op
        self.at_call = at_call
        self.at_step = at_step
        self.current_step = -1
        self.calls_matched = 0
        self.injections = 0
        self.failed = False
        self._timing: OpTiming | None = None

    def describe(self) -> str:
        filters = ", ".join(
            f"{k}={v!r}" for k, v in [
                ("rank", self.rank), ("phase", self.target_phase),
                ("tag", self.target_tag), ("op", self.target_op),
                ("at_call", self.at_call), ("at_step", self.at_step),
            ] if v is not None
        )
        return f"{self.fault_name}({filters})"

    # --- trainer hook -------------------------------------------------------

    def on_step_start(self, step: int) -> None:
        self.current_step = step

    # --- targeting ----------------------------------------------------------

    def _maybe_trigger(self, op: str, phase: str, tag: str) -> None:
        if self.failed:
            return
        if self.target_op is not None and self.target_op != op:
            return
        if self.target_phase is not None and self.target_phase not in phase:
            return
        if self.target_tag is not None and self.target_tag not in tag:
            return
        if self.at_step is not None and self.current_step != self.at_step:
            return
        self.calls_matched += 1
        if self.at_call is None or self.calls_matched >= self.at_call:
            self.failed = True
            self.injections += 1

    def _victim_delay(self) -> float:
        """Response delay of the failed rank (``inf`` = never answers)."""
        return float("inf")

    def _after_op(self, op: str, phase: str, tag: str) -> None:
        self._maybe_trigger(op, phase, tag)
        if self.failed:
            self._timing = OpTiming(
                delays={self.rank: self._victim_delay()},
                kinds={self.rank: self.kind},
            )
        else:
            self._timing = OpTiming(delays={}, kinds={})

    def pop_op_timing(self) -> OpTiming | None:
        """Detector hook: timing of the most recent op (consumed once)."""
        timing, self._timing = self._timing, None
        return timing

    # --- instrumented ops ---------------------------------------------------

    def ring_shift(self, bufs, ring, *, phase, tag="", reverse=False):
        out = super().ring_shift(bufs, ring, phase=phase, tag=tag,
                                 reverse=reverse)
        self._after_op("ring_shift", phase, tag)
        return out

    def exchange(self, bufs, dest_of, *, phase, tag="", channel="fwd"):
        out = super().exchange(bufs, dest_of, phase=phase, tag=tag,
                               channel=channel)
        self._after_op("exchange", phase, tag)
        return out

    def all_to_all(self, chunks, *, phase, tag=""):
        out = super().all_to_all(chunks, phase=phase, tag=tag)
        self._after_op("all_to_all", phase, tag)
        return out

    def group_all_to_all(self, chunks, groups, *, phase, tag=""):
        out = super().group_all_to_all(chunks, groups, phase=phase, tag=tag)
        self._after_op("group_all_to_all", phase, tag)
        return out

    def send(self, src, dst, payload, *, phase, tag=""):
        out = super().send(src, dst, payload, phase=phase, tag=tag)
        self._after_op("send", phase, tag)
        return out

    def all_gather(self, shards, *, axis=0, phase, tag=""):
        out = super().all_gather(shards, axis=axis, phase=phase, tag=tag)
        self._after_op("all_gather", phase, tag)
        return out

    def reduce_scatter(self, contributions, *, phase, tag=""):
        out = super().reduce_scatter(contributions, phase=phase, tag=tag)
        self._after_op("reduce_scatter", phase, tag)
        return out

    def all_reduce(self, bufs, *, phase, tag=""):
        out = super().all_reduce(bufs, phase=phase, tag=tag)
        self._after_op("all_reduce", phase, tag)
        return out

    def broadcast(self, buf, root, *, phase, tag=""):
        out = super().broadcast(buf, root, phase=phase, tag=tag)
        self._after_op("broadcast", phase, tag)
        return out


class CrashRankComm(RankFaultComm):
    """The victim's process dies: peers get a fast connection reset."""

    fault_name = "crash"
    kind = "crash"


class HangRankComm(RankFaultComm):
    """The victim wedges silently: no response, no transport error."""

    fault_name = "hang"
    kind = "hang"


class StragglerRankComm(RankFaultComm):
    """The victim answers ``slowdown_factor`` x slower than nominal.

    The default factor (4x) sits inside the detector's escalated-lease
    tolerance, so a straggler is *survived* by default; chaos scenarios
    pass an extreme factor to exercise the declared-dead path.
    """

    fault_name = "straggler"
    kind = "straggler"

    def __init__(self, topology, slowdown_factor: float = 4.0, **kw):
        super().__init__(topology, **kw)
        if slowdown_factor <= 1.0:
            raise ValueError(
                f"slowdown_factor must exceed 1, got {slowdown_factor}"
            )
        self.slowdown_factor = slowdown_factor

    def describe(self) -> str:
        base = super().describe()
        return base[:-1] + f", slowdown={self.slowdown_factor:g})"

    def _victim_delay(self) -> float:
        return self.slowdown_factor * NOMINAL_OP_S


RANK_FAULT_REGISTRY: dict[str, type[RankFaultComm]] = {
    "crash": CrashRankComm,
    "hang": HangRankComm,
    "straggler": StragglerRankComm,
}


def make_rank_fault(
    name: str, topology: ClusterTopology, **kwargs
) -> RankFaultComm:
    """Instantiate a rank-fault communicator by registry name."""
    try:
        cls = RANK_FAULT_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown rank fault {name!r}; available: "
            f"{sorted(RANK_FAULT_REGISTRY)}"
        ) from None
    return cls(topology, **kwargs)
