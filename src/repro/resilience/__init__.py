"""Fault-tolerant training: self-healing communication + checkpoint-restart.

The paper's setting — 1M-token sequences on 32–64 GPUs — only pays off if
a run *survives to completion*: one flipped payload or lost hop wastes
hours of wall-clock.  This package makes the stack survive exactly the
fault classes :mod:`repro.testing.faults` knows how to inject:

* :mod:`repro.resilience.comm` — :class:`ResilientCommunicator` wraps any
  :class:`~repro.comm.SimCommunicator`, checksums every delivery
  (``ring_shift`` / ``exchange`` / ``all_to_all`` / ``group_all_to_all`` /
  ``send``), detects corrupt / dropped / misrouted / stale / duplicate
  deliveries, and recovers via bounded retransmission with deterministic
  backoff; persistent damage raises a structured :class:`CommFailure`
  naming rank, phase, tag and call index, and a :class:`FaultMonitor`
  aggregates per-rank counters with optional :class:`FaultEscalation`.

* checkpoint-restart — atomic, checksum-manifested train-state snapshots
  live in :mod:`repro.nn.serialization`; ``Trainer.fit(resume_from=...)``
  restores them bitwise (see :mod:`repro.engine.trainer`).

* :mod:`repro.resilience.chaos` — the chaos-recovery runner: seeded
  schedules of mid-run faults (plus a simulated crash + restart) asserting
  that recovered loss trajectories match the fault-free run.  CLI:
  ``python -m repro.resilience.chaos --seed 0 --faults 3``; it also
  exports a session-scoped pytest fixture (``chaos_report``).
"""

from repro.resilience.comm import (
    CommFailure,
    FaultEscalation,
    FaultEvent,
    FaultMonitor,
    ResilientCommunicator,
    RetryPolicy,
    tree_checksum,
)

# Chaos exports are lazy (PEP 562): the runner pulls in the full engine
# stack, and ``python -m repro.resilience.chaos`` would otherwise import
# the module twice (package init + runpy) and warn.
_CHAOS_EXPORTS = (
    "ChaosReport",
    "CrashResult",
    "ScenarioResult",
    "SimulatedCrash",
    "run_chaos",
)


def __getattr__(name):
    if name in _CHAOS_EXPORTS:
        from repro.resilience import chaos

        return getattr(chaos, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "CommFailure",
    "FaultEscalation",
    "FaultEvent",
    "FaultMonitor",
    "ResilientCommunicator",
    "RetryPolicy",
    "tree_checksum",
    "ChaosReport",
    "CrashResult",
    "ScenarioResult",
    "SimulatedCrash",
    "run_chaos",
]
