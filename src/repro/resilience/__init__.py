"""Fault-tolerant training: self-healing communication + checkpoint-restart.

The paper's setting — 1M-token sequences on 32–64 GPUs — only pays off if
a run *survives to completion*: one flipped payload or lost hop wastes
hours of wall-clock.  This package makes the stack survive exactly the
fault classes :mod:`repro.testing.faults` knows how to inject:

* :mod:`repro.resilience.comm` — :class:`ResilientCommunicator` wraps any
  :class:`~repro.comm.SimCommunicator`, checksums every delivery
  (``ring_shift`` / ``exchange`` / ``all_to_all`` / ``group_all_to_all`` /
  ``send``), detects corrupt / dropped / misrouted / stale / duplicate
  deliveries, and recovers via bounded retransmission with deterministic
  backoff; persistent damage raises a structured :class:`CommFailure`
  naming rank, phase, tag and call index, and a :class:`FaultMonitor`
  aggregates per-rank counters with optional :class:`FaultEscalation`.

* checkpoint-restart — atomic, checksum-manifested train-state snapshots
  live in :mod:`repro.nn.serialization`; ``Trainer.fit(resume_from=...)``
  restores them bitwise (see :mod:`repro.engine.trainer`).

* :mod:`repro.resilience.chaos` — the chaos-recovery runner: seeded
  schedules of mid-run faults (plus a simulated crash + restart) asserting
  that recovered loss trajectories match the fault-free run.  CLI:
  ``python -m repro.resilience.chaos --seed 0 --faults 3``; it also
  exports a session-scoped pytest fixture (``chaos_report``).
"""

from repro.resilience.comm import (
    CommFailure,
    FaultEscalation,
    FaultEvent,
    FaultMonitor,
    ResilientCommunicator,
    RetryPolicy,
    tree_checksum,
)
from repro.resilience.rank_faults import (
    RANK_FAULT_REGISTRY,
    CrashRankComm,
    HangRankComm,
    RankFaultComm,
    StragglerRankComm,
    make_rank_fault,
)

# Chaos exports are lazy (PEP 562): the runner pulls in the full engine
# stack, and ``python -m repro.resilience.chaos`` would otherwise import
# the module twice (package init + runpy) and warn.
_CHAOS_EXPORTS = (
    "ChaosReport",
    "CrashResult",
    "RankFaultResult",
    "ScenarioResult",
    "SimulatedCrash",
    "run_chaos",
    "run_rank_fault_matrix",
)

# Elastic exports are lazy for the same reason: the runner builds engines.
_ELASTIC_EXPORTS = (
    "ElasticResult",
    "ElasticRunner",
    "FailureRecord",
    "SnapshotStore",
    "replan_partition",
)


def __getattr__(name):
    if name in _CHAOS_EXPORTS:
        from repro.resilience import chaos

        return getattr(chaos, name)
    if name in _ELASTIC_EXPORTS:
        from repro.resilience import elastic

        return getattr(elastic, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "CommFailure",
    "FaultEscalation",
    "FaultEvent",
    "FaultMonitor",
    "ResilientCommunicator",
    "RetryPolicy",
    "tree_checksum",
    "RANK_FAULT_REGISTRY",
    "RankFaultComm",
    "CrashRankComm",
    "HangRankComm",
    "StragglerRankComm",
    "make_rank_fault",
    "ChaosReport",
    "CrashResult",
    "RankFaultResult",
    "ScenarioResult",
    "SimulatedCrash",
    "run_chaos",
    "run_rank_fault_matrix",
    "ElasticResult",
    "ElasticRunner",
    "FailureRecord",
    "SnapshotStore",
    "replan_partition",
]
