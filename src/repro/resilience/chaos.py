"""Chaos-recovery runner: prove the stack survives injected faults.

Composes the PR-1 fault injectors (:mod:`repro.testing.faults`) with the
recovery layer (:class:`~repro.resilience.ResilientCommunicator` +
checkpoint-restart) over *seeded* schedules of mid-run faults:

* **fault scenarios** — each draws a fault class, strike call index and
  victim rank from a seeded RNG, trains a tiny model through the sabotaged
  communicator wrapped in the resilient layer, and asserts the loss
  trajectory matches the fault-free baseline bitwise;
* **crash-resume scenario** — a run writing periodic atomic train-state
  snapshots is killed by a :class:`SimulatedCrash` exception mid-run, then
  restarted with ``Trainer.fit(resume_from=...)``; the replayed
  :class:`~repro.engine.TrainRecord` history must equal the uninterrupted
  run's history exactly.

CLI (exit 0 iff every scenario recovered)::

    python -m repro.resilience.chaos --seed 0 --faults 3

The module also exports a session-scoped pytest fixture, ``chaos_report``
(enable with ``pytest_plugins = ("repro.resilience.chaos",)``), so test
suites can assert against one shared chaos run.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
from dataclasses import asdict, dataclass, field

import numpy as np

from repro.comm import FailureDetector, SimCommunicator
from repro.engine import BurstEngine, EngineConfig, Trainer
from repro.nn import TransformerConfig
from repro.nn.rng import set_seed
from repro.resilience.comm import FaultMonitor, ResilientCommunicator
from repro.resilience.elastic import ElasticRunner
from repro.resilience.rank_faults import make_rank_fault
from repro.testing.faults import FAULT_REGISTRY, make_fault
from repro.topology import a800_node, make_cluster

NUM_GPUS = 4
#: Loss trajectories must match the fault-free run to this max-abs budget;
#: recovery retransmits exact payload copies, so the match is bitwise and
#: the budget exists only to make the assertion's intent explicit.
LOSS_TOLERANCE = 1e-12


class SimulatedCrash(RuntimeError):
    """Raised mid-run to emulate a process kill / node loss."""


def _topology():
    return make_cluster(NUM_GPUS, node=a800_node(gpus_per_node=NUM_GPUS))


def _make_engine(
    method: str = "burst", comm=None, ring_mode: str = "unidirectional"
) -> BurstEngine:
    method_kwargs = (
        {"ring_mode": ring_mode} if ring_mode != "unidirectional" else {}
    )
    config = EngineConfig(
        model=TransformerConfig(
            vocab_size=32, dim=16, n_layers=1, n_heads=4, ffn_hidden=24,
            max_seq_len=32, attn_block_size=8, seed=1,
        ),
        method=method, method_kwargs=method_kwargs,
        num_gpus=NUM_GPUS, gpus_per_node=NUM_GPUS, lr=3e-3,
    )
    if comm is not None:
        return BurstEngine(config, comm=comm)
    return BurstEngine(config, topology=_topology())


def _make_batches(seed: int = 0, n: int = 2, seq: int = 32, vocab: int = 32):
    rng = np.random.default_rng(seed)
    batches = []
    for _ in range(n):
        ids = rng.integers(0, vocab, size=seq)
        batches.append((ids, np.roll(ids, -1)))
    return batches


@dataclass
class ScenarioResult:
    """Outcome of one recovered-fault training run."""

    description: str
    injections: int
    faults_detected: int
    recoveries: int
    max_loss_diff: float
    ok: bool

    def summary(self) -> str:
        status = "PASS" if self.ok else "FAIL"
        return (
            f"[{status}] {self.description}: injected={self.injections} "
            f"detected={self.faults_detected} recovered={self.recoveries} "
            f"max|Δloss|={self.max_loss_diff:.2e}"
        )


@dataclass
class CrashResult:
    """Outcome of the crash-and-resume determinism scenario."""

    crash_step: int
    resume_step: int
    steps: int
    records_match: bool

    @property
    def ok(self) -> bool:
        return self.records_match

    def summary(self) -> str:
        status = "PASS" if self.ok else "FAIL"
        return (
            f"[{status}] crash after step {self.crash_step}, resumed from "
            f"snapshot at step {self.resume_step}, replayed to {self.steps} "
            f"steps: history {'bitwise identical' if self.records_match else 'DIVERGED'}"
        )


@dataclass
class ChaosReport:
    """Everything one chaos run produced."""

    seed: int
    method: str
    steps: int
    baseline_losses: list[float]
    scenarios: list[ScenarioResult] = field(default_factory=list)
    crash: CrashResult | None = None

    @property
    def ok(self) -> bool:
        return all(s.ok for s in self.scenarios) and (
            self.crash is None or self.crash.ok
        )

    def summary(self) -> str:
        lines = [
            f"chaos run: seed={self.seed} method={self.method} "
            f"steps={self.steps} scenarios={len(self.scenarios)}"
        ]
        lines.extend(s.summary() for s in self.scenarios)
        if self.crash is not None:
            lines.append(self.crash.summary())
        lines.append("CHAOS OK" if self.ok else "CHAOS FAILED")
        return "\n".join(lines)


def _baseline_losses(
    method: str, batches, steps: int, ring_mode: str = "unidirectional"
) -> list[float]:
    set_seed(0)
    trainer = Trainer(_make_engine(method, ring_mode=ring_mode), clip_norm=1.0)
    trainer.fit(batches, steps)
    return trainer.losses()


def run_fault_scenarios(
    *,
    seed: int,
    n_faults: int,
    method: str,
    batches,
    steps: int,
    baseline: list[float],
    ring_mode: str = "unidirectional",
) -> list[ScenarioResult]:
    """Train through seeded single-site faults behind the resilient layer.

    Under ``ring_mode="bidirectional"`` every other scenario pins its fault
    to the reverse channel, so the counter-rotating stream gets direct
    chaos coverage rather than relying on the RNG to happen to strike it.
    """
    rng = np.random.default_rng(seed)
    names = sorted(FAULT_REGISTRY)
    results = []
    for i in range(n_faults):
        name = names[int(rng.integers(len(names)))]
        victim = int(rng.integers(NUM_GPUS))
        channel = (
            "rev" if ring_mode == "bidirectional" and i % 2 == 1 else None
        )
        # The reverse stream carries far fewer transfers than the forward
        # one (one seed exchange per pass on a 4-GPU ring), so rev strikes
        # draw from a window every scenario is guaranteed to reach.
        at_call = int(rng.integers(1, 5 if channel == "rev" else 10))
        fault = make_fault(
            name, _topology(), at_call=at_call, victim=victim,
            channel=channel,
        )
        monitor = FaultMonitor()
        comm = ResilientCommunicator(fault, monitor=monitor)
        set_seed(0)
        trainer = Trainer(
            _make_engine(method, comm=comm, ring_mode=ring_mode),
            clip_norm=1.0,
        )
        trainer.fit(batches, steps)
        diff = float(
            np.max(np.abs(np.asarray(trainer.losses()) - np.asarray(baseline)))
        )
        results.append(
            ScenarioResult(
                description=f"{fault.describe()} victim={victim}",
                injections=fault.injections,
                faults_detected=monitor.total_faults,
                recoveries=monitor.total_recoveries,
                max_loss_diff=diff,
                ok=diff <= LOSS_TOLERANCE and fault.injections >= 1,
            )
        )
    return results


def run_crash_resume(
    *,
    method: str,
    batches,
    steps: int = 6,
    crash_after: int = 4,
    save_every: int = 2,
    ring_mode: str = "unidirectional",
) -> CrashResult:
    """Kill a snapshotting run mid-flight, resume, and compare histories."""
    with tempfile.TemporaryDirectory() as tmpdir:
        state_path = os.path.join(tmpdir, "train_state.npz")

        # The run that never crashes — ground truth history.
        set_seed(0)
        uninterrupted = Trainer(
            _make_engine(method, ring_mode=ring_mode), clip_norm=1.0
        )
        uninterrupted.fit(batches, steps)

        # The run that dies right after completing step `crash_after`.
        def crash(trainer: Trainer, record) -> None:
            if record.step == crash_after:
                raise SimulatedCrash(f"simulated kill after step {record.step}")

        set_seed(0)
        doomed = Trainer(
            _make_engine(method, ring_mode=ring_mode), clip_norm=1.0,
            state_path=state_path, save_every=save_every, on_step_end=crash,
        )
        try:
            doomed.fit(batches, steps)
            raise RuntimeError("simulated crash did not fire")
        except SimulatedCrash:
            pass

        # A fresh "process": new engine, deliberately scrambled RNG — the
        # snapshot must restore every bit of state that matters.
        set_seed(987654321)
        resumed = Trainer(
            _make_engine(method, ring_mode=ring_mode), clip_norm=1.0
        )
        resumed.fit(batches, steps, resume_from=state_path)

        return CrashResult(
            crash_step=crash_after,
            resume_step=(crash_after // save_every) * save_every,
            steps=steps,
            records_match=resumed.history == uninterrupted.history,
        )


def run_chaos(
    seed: int = 0,
    n_faults: int = 3,
    steps: int = 4,
    method: str = "burst",
    crash: bool = True,
    ring_mode: str = "unidirectional",
) -> ChaosReport:
    """Run the full chaos schedule; see the module docstring."""
    batches = _make_batches(seed=0)
    baseline = _baseline_losses(method, batches, steps, ring_mode=ring_mode)
    report = ChaosReport(
        seed=seed, method=method, steps=steps, baseline_losses=baseline
    )
    report.scenarios = run_fault_scenarios(
        seed=seed, n_faults=n_faults, method=method, batches=batches,
        steps=steps, baseline=baseline, ring_mode=ring_mode,
    )
    if crash:
        report.crash = run_crash_resume(
            method=method, batches=batches, ring_mode=ring_mode
        )
    return report


# --- rank-failure matrix ------------------------------------------------------

#: Sequence length for elastic scenarios: divisible by ``2 * G`` for both
#: the healthy 4-rank world and the 3 survivors a single failure leaves.
ELASTIC_SEQ = 24

#: (method, ring_mode) cells of the rank-failure matrix; Ulysses has no
#: ring, so its ring_mode axis collapses to one cell.
RANK_FAULT_CELLS = (
    ("burst", "unidirectional"),
    ("burst", "bidirectional"),
    ("megatron-cp", "unidirectional"),
    ("megatron-cp", "bidirectional"),
    ("ulysses", "unidirectional"),
)

#: Straggler slowdown past the fully-escalated lease (24x nominal), so the
#: detector must eventually declare the rank dead rather than tolerate it.
FATAL_SLOWDOWN = 64.0


def _make_elastic_config(
    method: str, ring_mode: str = "unidirectional"
) -> EngineConfig:
    method_kwargs = (
        {"ring_mode": ring_mode} if ring_mode != "unidirectional" else {}
    )
    return EngineConfig(
        model=TransformerConfig(
            vocab_size=32, dim=24, n_layers=1, n_heads=12, ffn_hidden=24,
            max_seq_len=ELASTIC_SEQ, attn_block_size=4, seed=1,
        ),
        method=method, method_kwargs=method_kwargs,
        num_gpus=NUM_GPUS, gpus_per_node=NUM_GPUS, lr=3e-3,
    )


@dataclass
class RankFaultResult:
    """Outcome of one detect -> shrink -> replay scenario."""

    kind: str
    method: str
    ring_mode: str
    victim: int
    detected: bool
    detected_kind: str | None
    world_before: int
    world_after: int
    resume_step: int
    replay_match: bool
    traffic_match: bool
    #: path of the dumped post-mortem bundle (None unless requested)
    postmortem: str | None = None
    #: bundle validated and names the victim on its critical path
    postmortem_ok: bool = True

    @property
    def ok(self) -> bool:
        return (
            self.detected
            and self.detected_kind == self.kind
            and self.world_after == self.world_before - 1
            and self.replay_match
            and self.traffic_match
            and self.postmortem_ok
        )

    def summary(self) -> str:
        status = "PASS" if self.ok else "FAIL"
        return (
            f"[{status}] {self.kind} rank {self.victim} under "
            f"{self.method}/{self.ring_mode}: detected={self.detected} "
            f"world={self.world_before}->{self.world_after} "
            f"resume@{self.resume_step} "
            f"replay={'bitwise' if self.replay_match else 'DIVERGED'} "
            f"traffic={'match' if self.traffic_match else 'MISMATCH'}"
            + (
                f" postmortem={'valid' if self.postmortem_ok else 'INVALID'}"
                if self.postmortem is not None or not self.postmortem_ok
                else ""
            )
        )


def _log_signature(comm) -> list[tuple]:
    return [
        (r.src, r.dst, r.nbytes, r.nelems, r.phase, r.channel)
        for r in comm.log.records
    ]


def run_rank_fault_scenario(
    kind: str,
    method: str,
    ring_mode: str = "unidirectional",
    *,
    seed: int = 0,
    steps: int = 4,
    fail_step: int = 2,
    victim: int = 1,
    postmortem_dir: str | None = None,
) -> RankFaultResult:
    """One cell of the matrix: kill ``victim`` mid-run, recover, verify.

    The elastic run must (1) *detect* — raise a structured failure instead
    of deadlocking, (2) *shrink* to the ``G - 1`` survivors, and (3)
    *replay* such that both the step history and the full post-resume
    traffic log are bitwise identical to a fresh survivors-only run resumed
    from the same snapshot.  With ``postmortem_dir`` set, the elastic run
    executes under tracing with an installed
    :class:`~repro.obs.FlightRecorder`, and the detection must addition-
    ally have dumped a valid post-mortem bundle whose critical-path table
    names the victim rank.
    """
    config = _make_elastic_config(method, ring_mode)
    batches = _make_batches(seed=0, seq=ELASTIC_SEQ)
    comms: list[FailureDetector] = []

    def comm_factory(topo, incarnation):
        if incarnation == 0:
            kwargs = dict(rank=victim, at_step=fail_step, at_call=1)
            if kind == "straggler":
                kwargs["slowdown_factor"] = FATAL_SLOWDOWN
            inner = make_rank_fault(kind, topo, **kwargs)
        else:
            inner = SimCommunicator(topo)
        detector = FailureDetector(inner)
        comms.append(detector)
        return detector

    recorder = None
    if postmortem_dir is not None:
        from repro.obs import FlightRecorder

        recorder = FlightRecorder(
            out_dir=postmortem_dir,
            prefix=f"{method}-{ring_mode}-{kind}-",
        ).install()

    with tempfile.TemporaryDirectory() as tmpdir:
        runner = ElasticRunner(
            lambda topo, comm: BurstEngine(config, comm=comm),
            snapshot_dir=tmpdir,
            comm_factory=comm_factory,
            seed=seed,
        )
        try:
            if recorder is not None:
                from repro.obs import use_tracing

                with use_tracing():
                    result = runner.run(batches, steps, _topology())
            else:
                result = runner.run(batches, steps, _topology())
        finally:
            if recorder is not None:
                recorder.uninstall()
        detected = len(result.failures) == 1
        record = result.failures[0] if detected else None

        postmortem = None
        postmortem_ok = True
        if recorder is not None:
            postmortem = recorder.dumps[0] if recorder.dumps else None
            postmortem_ok = _check_postmortem(postmortem, victim)

        replay_match = traffic_match = False
        if record is not None and record.resume_path is not None:
            # Ground truth: a fresh process on the survivor topology,
            # resumed from the very snapshot the elastic run replayed.
            fresh_comm = FailureDetector(SimCommunicator(result.topology))
            set_seed(seed)
            fresh = Trainer(BurstEngine(config, comm=fresh_comm), clip_norm=1.0)
            fresh.fit(batches, steps, resume_from=record.resume_path)
            replay_match = (
                [asdict(r) for r in fresh.history]
                == [asdict(r) for r in result.history]
            )
            traffic_match = (
                _log_signature(fresh_comm) == _log_signature(comms[-1])
            )

    return RankFaultResult(
        kind=kind,
        method=method,
        ring_mode=ring_mode,
        victim=victim,
        detected=detected,
        detected_kind=record.failure.kind if record else None,
        world_before=record.world_before if record else NUM_GPUS,
        world_after=record.world_after if record else NUM_GPUS,
        resume_step=record.resume_step if record else -1,
        replay_match=replay_match,
        traffic_match=traffic_match,
        postmortem=postmortem,
        postmortem_ok=postmortem_ok,
    )


def _check_postmortem(path: str | None, victim: int) -> bool:
    """Validate a dumped bundle and require the victim on its critical path."""
    from repro.obs import validate_postmortem

    if path is None:
        return False
    try:
        with open(path) as fh:
            bundle = validate_postmortem(fh.read())
    except (OSError, ValueError):
        return False
    return any(
        entry.get("rank") == victim for entry in bundle["critical_path"]
    )


def run_rank_fault_matrix(
    seed: int = 0, steps: int = 4, postmortem_dir: str | None = None
) -> list[RankFaultResult]:
    """The full {crash, hang, straggler} x method/ring-mode matrix."""
    from repro.resilience.rank_faults import RANK_FAULT_REGISTRY

    rng = np.random.default_rng(seed)
    results = []
    for method, ring_mode in RANK_FAULT_CELLS:
        for kind in sorted(RANK_FAULT_REGISTRY):
            victim = int(rng.integers(NUM_GPUS))
            results.append(
                run_rank_fault_scenario(
                    kind, method, ring_mode,
                    seed=seed, steps=steps, victim=victim,
                    postmortem_dir=postmortem_dir,
                )
            )
    return results


# --- pytest integration ------------------------------------------------------

try:  # pragma: no cover - import guard
    import pytest as _pytest
except ImportError:  # pragma: no cover
    _pytest = None

if _pytest is not None:
    @_pytest.fixture(scope="session")
    def chaos_report() -> ChaosReport:
        """One shared chaos-recovery run (seed 0) for the whole session."""
        return run_chaos(seed=0, n_faults=2)


# --- CLI ---------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.resilience.chaos",
        description="Chaos-recovery runner: inject faults mid-run and assert "
        "the recovered loss trajectories match the fault-free run.",
    )
    parser.add_argument("--seed", type=int, default=0, help="scenario RNG seed")
    parser.add_argument("--faults", type=int, default=3,
                        help="number of seeded fault scenarios")
    parser.add_argument("--steps", type=int, default=4,
                        help="training steps per scenario")
    parser.add_argument("--method", default="burst",
                        help="distributed attention method under test")
    parser.add_argument("--ring-mode", default="unidirectional",
                        choices=("unidirectional", "bidirectional"),
                        help="ring circulation mode; bidirectional pins "
                        "every other fault to the reverse channel")
    parser.add_argument("--skip-crash", action="store_true",
                        help="skip the crash-and-resume scenario")
    parser.add_argument("--rank-faults", action="store_true",
                        help="run the rank-failure matrix instead: "
                        "{crash, hang, straggler} x method/ring-mode; every "
                        "cell must detect, shrink to the survivors, and "
                        "replay bitwise")
    parser.add_argument("--report", metavar="PATH",
                        help="also write the results as JSON to PATH")
    parser.add_argument("--postmortem-dir", metavar="DIR",
                        help="with --rank-faults: run each cell under "
                        "tracing with a flight recorder and dump a "
                        "validated post-mortem bundle per detected failure "
                        "into DIR")
    args = parser.parse_args(argv)

    if args.postmortem_dir and not args.rank_faults:
        parser.error("--postmortem-dir requires --rank-faults")

    if args.rank_faults:
        results = run_rank_fault_matrix(
            seed=args.seed, steps=args.steps,
            postmortem_dir=args.postmortem_dir,
        )
        for r in results:
            print(r.summary())
        ok = all(r.ok for r in results)
        print(f"rank-failure matrix: {len(results)} cells, "
              f"{'ALL RECOVERED' if ok else 'FAILURES'}")
        if args.report:
            payload = {
                "mode": "rank-faults", "seed": args.seed, "ok": ok,
                "cells": [dict(asdict(r), ok=r.ok) for r in results],
            }
            with open(args.report, "w") as fh:
                json.dump(payload, fh, indent=2)
        return 0 if ok else 1

    report = run_chaos(
        seed=args.seed, n_faults=args.faults, steps=args.steps,
        method=args.method, crash=not args.skip_crash,
        ring_mode=args.ring_mode,
    )
    print(report.summary())
    if args.report:
        payload = dict(asdict(report), mode="chaos", ok=report.ok)
        with open(args.report, "w") as fh:
            json.dump(payload, fh, indent=2)
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
