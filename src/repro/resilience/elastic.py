"""Elastic rank-failure recovery: shrink the topology and replay.

When a :class:`~repro.comm.FailureDetector` declares a rank dead mid-step,
nothing about that step can be salvaged — partial collectives and half-
accumulated gradients are garbage.  Real elastic runtimes (and the
month-long 1M-token runs the paper targets) recover by *re-planning*:

1. **abort** — the :class:`~repro.comm.RankFailure` propagates out of the
   in-flight ``Trainer.fit`` step on every survivor;
2. **shrink** — :func:`repro.topology.shrink_cluster` rebuilds the
   :class:`~repro.topology.ClusterTopology` over the ``G - k`` survivors,
   and :func:`replan_partition` re-solves the sequence partition for the
   new world size (DCP-style: shard layout is a per-incarnation decision,
   not a launch-time constant) — ring schedules, including the PR-6
   bidirectional variant, re-derive from the shrunk topology when the
   engine is rebuilt;
3. **replay** — the run resumes from the newest *valid* snapshot in the
   :class:`SnapshotStore` (corrupt or partial snapshots are rejected by
   :func:`repro.nn.serialization.verify_train_state` and the previous
   complete one is used), restoring parameters, optimizer moments, RNG
   stream and history so the continued losses are bitwise-identical to a
   fresh ``G - k``-rank run resumed from the same snapshot.

:class:`ElasticRunner` drives the loop; :class:`ElasticResult` reports the
full history, every :class:`FailureRecord`, and the final topology whose
traffic the degraded-topology closed forms of :mod:`repro.perf.cost` pin.
Every recovery emits a ``failure.recover`` trace span and the
``resilience.rank_recoveries`` counter, completing the ``rank_failures``
metrics family the detector opens.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.comm import FailureDetector, LeaseConfig, RankFailure, SimCommunicator
from repro.nn.rng import set_seed
from repro.nn.serialization import CheckpointError, verify_train_state
from repro.obs.metrics import get_registry
from repro.obs.tracer import trace_span
from repro.topology import ClusterTopology, shrink_cluster

__all__ = [
    "ElasticResult",
    "ElasticRunner",
    "FailureRecord",
    "SnapshotStore",
    "replan_partition",
]

_SNAPSHOT_RE = re.compile(r"^snapshot_(\d+)\.npz$")


def replan_partition(
    partitioner, seq_len: int, world_size: int
) -> list[np.ndarray]:
    """Re-solve the sequence partition for a (shrunk) world size.

    Returns the per-rank global token indices.  Raises ``ValueError`` when
    the sequence cannot be partitioned over the survivors — surfacing an
    infeasible shrink as a planning error rather than a mid-step crash.
    """
    return partitioner.indices(seq_len, world_size)


class SnapshotStore:
    """Rotated per-step train-state snapshots with integrity-gated reads.

    One file per snapshotted step (``snapshot_000007.npz``), pruned to the
    newest ``keep``.  :meth:`latest_valid` walks the files newest-first and
    returns the first one that passes
    :func:`~repro.nn.serialization.verify_train_state` — a snapshot
    truncated or corrupted by a crash mid-recovery is skipped, never
    trained from.
    """

    def __init__(self, directory: str, keep: int = 5):
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.directory = directory
        self.keep = keep
        os.makedirs(directory, exist_ok=True)

    def path_for(self, step: int) -> str:
        return os.path.join(self.directory, f"snapshot_{step:06d}.npz")

    def steps(self) -> list[int]:
        """Snapshotted steps present on disk, ascending."""
        out = []
        for name in os.listdir(self.directory):
            m = _SNAPSHOT_RE.match(name)
            if m:
                out.append(int(m.group(1)))
        return sorted(out)

    def prune(self) -> list[int]:
        """Delete all but the newest ``keep`` snapshots; returns removals."""
        steps = self.steps()
        removed = steps[:-self.keep] if len(steps) > self.keep else []
        for step in removed:
            try:
                os.unlink(self.path_for(step))
            except OSError:
                pass
        return removed

    def latest_valid(self) -> tuple[int, str] | None:
        """Newest snapshot that passes verification, or ``None``."""
        for step in reversed(self.steps()):
            path = self.path_for(step)
            try:
                verify_train_state(path)
            except CheckpointError:
                continue
            return step, path
        return None


@dataclass
class FailureRecord:
    """One detected rank failure and the recovery that followed."""

    failure: RankFailure
    incarnation: int
    world_before: int
    world_after: int
    resume_step: int
    resume_path: str | None

    def summary(self) -> str:
        f = self.failure
        src = (
            f"snapshot step {self.resume_step}" if self.resume_path
            else "scratch"
        )
        return (
            f"rank {f.rank} {f.kind} in {f.op}@step {f.step} -> "
            f"{self.world_before}->{self.world_after} ranks, resumed from "
            f"{src}"
        )


@dataclass
class ElasticResult:
    """Outcome of one elastic training run."""

    history: list = field(default_factory=list)
    failures: list[FailureRecord] = field(default_factory=list)
    incarnations: int = 1
    topology: ClusterTopology | None = None
    #: per-rank shard sizes of the final partition plan
    shard_sizes: list[int] = field(default_factory=list)
    #: lease extensions granted to tolerated stragglers (rank, op, count)
    tolerated_stragglers: list[tuple[int, str, int]] = field(
        default_factory=list
    )

    def losses(self) -> list[float]:
        return [r.loss for r in self.history]

    @property
    def final_world_size(self) -> int:
        return self.topology.world_size if self.topology else 0

    def summary(self) -> str:
        lines = [
            f"elastic run: {len(self.history)} steps, "
            f"{len(self.failures)} failure(s), "
            f"{self.incarnations} incarnation(s), final world "
            f"{self.final_world_size}"
        ]
        lines += [f"  {f.summary()}" for f in self.failures]
        return "\n".join(lines)


class ElasticRunner:
    """Failure-detecting training loop with topology shrink + replay.

    Parameters
    ----------
    engine_factory:
        ``(topology, comm) -> BurstEngine`` — rebuilt per incarnation so
        ring schedules and the sequence partition re-derive from the
        current topology.
    snapshot_dir:
        Directory for the rotated :class:`SnapshotStore`.
    comm_factory:
        ``(topology, incarnation) -> communicator`` — defaults to a
        :class:`~repro.comm.FailureDetector` over a plain
        :class:`~repro.comm.SimCommunicator`.  Chaos scenarios return a
        detector over a rank-fault injector for incarnation 0 and a clean
        detector afterwards (the dead rank stays gone).
    trainer_factory:
        ``(engine) -> Trainer`` for custom schedules / clipping; the
        runner chains its snapshot hook after any ``on_step_end`` the
        factory installed.
    seed:
        :func:`repro.nn.rng.set_seed` value for the from-scratch start
        (resumed incarnations restore the snapshot's RNG stream instead).
    max_failures:
        Failure budget; one more failure re-raises the
        :class:`~repro.comm.RankFailure`.
    keep:
        Snapshot rotation depth.
    """

    def __init__(
        self,
        engine_factory: Callable,
        *,
        snapshot_dir: str,
        comm_factory: Callable | None = None,
        trainer_factory: Callable | None = None,
        lease: LeaseConfig | None = None,
        seed: int = 0,
        max_failures: int = 3,
        keep: int = 5,
    ):
        self.engine_factory = engine_factory
        self.store = SnapshotStore(snapshot_dir, keep=keep)
        self.comm_factory = comm_factory or self._default_comm
        self.trainer_factory = trainer_factory
        self.lease = lease
        self.seed = seed
        self.max_failures = max_failures

    def _default_comm(self, topology: ClusterTopology, incarnation: int):
        return FailureDetector(SimCommunicator(topology), lease=self.lease)

    def _make_trainer(self, engine):
        if self.trainer_factory is not None:
            trainer = self.trainer_factory(engine)
        else:
            from repro.engine import Trainer

            trainer = Trainer(engine, clip_norm=1.0)
        user_hook = trainer.on_step_end

        def snapshot(tr, record) -> None:
            tr.save_state(self.store.path_for(record.step))
            self.store.prune()
            if user_hook is not None:
                user_hook(tr, record)

        trainer.on_step_end = snapshot
        return trainer

    def run(
        self,
        batches: Sequence,
        steps: int,
        topology: ClusterTopology,
    ) -> ElasticResult:
        """Train ``steps`` steps, surviving up to ``max_failures`` ranks."""
        result = ElasticResult(topology=topology)
        incarnation = 0
        while True:
            comm = self.comm_factory(topology, incarnation)
            set_seed(self.seed)
            engine = self.engine_factory(topology, comm)
            shards = replan_partition(
                engine.method.partitioner,
                engine.config.model.max_seq_len,
                topology.world_size,
            )
            result.shard_sizes = [len(s) for s in shards]
            trainer = self._make_trainer(engine)
            latest = self.store.latest_valid()
            try:
                if latest is None:
                    trainer.fit(batches, steps)
                else:
                    trainer.fit(batches, steps, resume_from=latest[1])
                result.history = list(trainer.history)
                result.incarnations = incarnation + 1
                result.topology = topology
                if isinstance(comm, FailureDetector):
                    result.tolerated_stragglers = list(comm.tolerated)
                return result
            except RankFailure as failure:
                if len(result.failures) >= self.max_failures:
                    raise
                shrunk = shrink_cluster(topology, [failure.rank])
                resume = self.store.latest_valid()
                record = FailureRecord(
                    failure=failure,
                    incarnation=incarnation,
                    world_before=topology.world_size,
                    world_after=shrunk.world_size,
                    resume_step=resume[0] if resume else -1,
                    resume_path=resume[1] if resume else None,
                )
                result.failures.append(record)
                get_registry().counter("resilience.rank_recoveries").inc(
                    kind=failure.kind
                )
                with trace_span(
                    "failure.recover", phase="resilience",
                    rank=failure.rank, kind=failure.kind,
                    step=failure.step,
                    world_before=topology.world_size,
                    world_after=shrunk.world_size,
                    resume_step=record.resume_step,
                ):
                    pass
                topology = shrunk
                incarnation += 1
