"""Self-healing communication: checksum-verified delivery with bounded retry.

:class:`ResilientCommunicator` wraps any :class:`~repro.comm.SimCommunicator`
(including the fault-injecting wrappers of :mod:`repro.testing.faults`) and
guards every *delivery* op — ``ring_shift`` / ``exchange`` / ``all_to_all`` /
``group_all_to_all`` / ``send`` — with an end-to-end integrity check:

1. before issuing the op, the sender-side checksum of every payload is
   computed (in a real deployment this digest rides along with the data,
   exactly like the CRC a NIC or a NCCL debug build attaches per message);
2. after the inner communicator delivers, each rank's received buffers are
   re-hashed and compared against what the matching sender advertised;
3. any mismatch — a corrupted payload, a silently dropped message, a hop
   routed to the wrong rank, a stale double-buffer, a duplicated packet,
   i.e. exactly the five fault classes of :mod:`repro.testing.faults` —
   triggers a bounded retransmit with deterministic exponential backoff;
4. if the mismatch persists past :attr:`RetryPolicy.max_retries`, a
   structured :class:`CommFailure` is raised naming the op, phase, tag,
   guarded call index and the ranks whose deliveries were bad, so a
   supervisor can fence the run instead of training on garbage.

Every detection/recovery event is aggregated by a :class:`FaultMonitor`,
which keeps per-rank fault counters and can *escalate* (raise
:class:`FaultEscalation`) once any single rank accumulates more faults
than a configured threshold — the "replace that flaky node" signal of
large-run practice.

Collectives that the fault injectors never touch (``all_gather``,
``all_reduce``, ``reduce_scatter``, ``broadcast``) pass straight through
to the inner communicator.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.comm import SimCommunicator, TrafficLog
from repro.obs.metrics import get_registry
from repro.obs.tracer import trace_span
from repro.topology import ClusterTopology

__all__ = [
    "CommFailure",
    "FaultEscalation",
    "FaultEvent",
    "FaultMonitor",
    "ResilientCommunicator",
    "RetryPolicy",
    "tree_checksum",
]


def _update_digest(h, node) -> None:
    if node is None:
        h.update(b"N")
    elif isinstance(node, np.ndarray):
        a = np.ascontiguousarray(node)
        h.update(b"A")
        h.update(str(a.dtype).encode())
        h.update(str(a.shape).encode())
        h.update(a.tobytes())
    elif isinstance(node, tuple):
        h.update(b"T%d" % len(node))
        for x in node:
            _update_digest(h, x)
    elif isinstance(node, list):
        h.update(b"L%d" % len(node))
        for x in node:
            _update_digest(h, x)
    elif isinstance(node, dict):
        h.update(b"D%d" % len(node))
        for k in sorted(node):
            h.update(str(k).encode())
            _update_digest(h, node[k])
    elif isinstance(node, (bool, int, float, str, np.generic)):
        h.update(b"S")
        h.update(repr(node).encode())
    else:
        raise TypeError(
            f"cannot checksum payload node of type {type(node).__name__}"
        )


def tree_checksum(tree: object) -> str:
    """Deterministic SHA-256 digest of a payload pytree.

    Covers dtype, shape and exact bytes of every array leaf (plus container
    structure), so any bitwise difference between what was sent and what
    was delivered changes the digest.
    """
    h = hashlib.sha256()
    _update_digest(h, tree)
    return h.hexdigest()


class CommFailure(RuntimeError):
    """A delivery stayed corrupt after every allowed retransmission.

    Attributes name the failing transfer precisely so a supervisor (or a
    test) can pin the blame: ``op``, ``phase``, ``tag``, the ring
    direction ``channel`` (``"fwd"`` / ``"rev"`` — attributing
    bidirectional-ring failures per direction), the 1-based ``call_index``
    among guarded calls, the ``ranks`` whose deliveries mismatched, and
    the number of ``attempts`` made.
    """

    def __init__(
        self,
        *,
        op: str,
        phase: str,
        tag: str,
        call_index: int,
        ranks: Sequence[int],
        attempts: int,
        channel: str = "fwd",
    ):
        self.op = op
        self.phase = phase
        self.tag = tag
        self.channel = channel
        self.call_index = call_index
        self.ranks = list(ranks)
        self.attempts = attempts
        super().__init__(
            f"unrecoverable delivery failure: op={op!r} phase={phase!r} "
            f"tag={tag!r} channel={channel!r} call #{call_index}, ranks "
            f"{self.ranks} still corrupt after {attempts} attempts"
        )


class FaultEscalation(RuntimeError):
    """A single rank exceeded the monitor's fault budget (flaky hardware)."""

    def __init__(self, rank: int, count: int, threshold: int):
        self.rank = rank
        self.count = count
        self.threshold = threshold
        super().__init__(
            f"rank {rank} accumulated {count} delivery faults "
            f"(threshold {threshold}); escalating — fence this rank"
        )


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retransmission with deterministic exponential backoff.

    The simulation has no wall clock, so backoff is *accounted* (summed
    into the monitor) rather than slept; determinism keeps chaos runs
    reproducible.
    """

    max_retries: int = 3
    base_backoff_s: float = 0.05
    multiplier: float = 2.0
    #: Exponent cap: ``multiplier ** attempt`` overflows float64 past
    #: ``attempt ≈ 1024`` (for multiplier 2), so the backoff saturates at
    #: ``base * multiplier ** max_exponent`` instead of raising
    #: ``OverflowError`` under pathological retry counts.
    max_exponent: int = 60

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.base_backoff_s < 0 or self.multiplier <= 0:
            raise ValueError("backoff parameters must be positive")
        if self.max_exponent < 0:
            raise ValueError(f"max_exponent must be >= 0, got {self.max_exponent}")

    def delay(self, attempt: int) -> float:
        """Backoff before retransmission ``attempt`` (0-based), saturating
        at the :attr:`max_exponent` cap."""
        return self.base_backoff_s * self.multiplier ** min(
            attempt, self.max_exponent
        )


@dataclass
class FaultEvent:
    """One detected bad delivery (possibly later recovered).

    ``channel`` is the ring direction the damaged transfer rode
    (``"fwd"`` / ``"rev"``), so bidirectional-ring faults are attributable
    per direction.
    """

    op: str
    phase: str
    tag: str
    call_index: int
    ranks: list[int]
    attempt: int
    channel: str = "fwd"


@dataclass
class FaultMonitor:
    """Aggregates detection/recovery events with per-rank counters.

    Parameters
    ----------
    escalate_threshold:
        When set, :class:`FaultEscalation` is raised as soon as any single
        rank's cumulative fault count exceeds it.  ``None`` never escalates.
    """

    escalate_threshold: int | None = None
    events: list[FaultEvent] = field(default_factory=list)
    faults_by_rank: dict[int, int] = field(default_factory=dict)
    recoveries: list[tuple[str, int, int]] = field(default_factory=list)
    total_backoff_s: float = 0.0
    #: mirror every event into the global metrics registry
    #: (``resilience.*`` counters) so one snapshot covers fault state too
    mirror_to_registry: bool = True

    @property
    def total_faults(self) -> int:
        return len(self.events)

    @property
    def total_recoveries(self) -> int:
        return len(self.recoveries)

    def record_fault(
        self,
        *,
        op: str,
        phase: str,
        tag: str,
        call_index: int,
        ranks: Sequence[int],
        backoff_s: float = 0.0,
        attempt: int = 0,
        channel: str = "fwd",
    ) -> None:
        self.events.append(
            FaultEvent(op=op, phase=phase, tag=tag, call_index=call_index,
                       ranks=list(ranks), attempt=attempt, channel=channel)
        )
        self.total_backoff_s += backoff_s
        if self.mirror_to_registry:
            reg = get_registry()
            reg.counter("resilience.faults").inc(op=op, channel=channel)
            reg.counter("resilience.backoff_seconds").inc(backoff_s)
        for r in ranks:
            count = self.faults_by_rank.get(r, 0) + 1
            self.faults_by_rank[r] = count
            if self.mirror_to_registry:
                get_registry().counter("resilience.faults_by_rank").inc(rank=r)
            if self.escalate_threshold is not None and count > self.escalate_threshold:
                raise FaultEscalation(r, count, self.escalate_threshold)

    def record_recovery(self, op: str, call_index: int, attempts: int) -> None:
        self.recoveries.append((op, call_index, attempts))
        if self.mirror_to_registry:
            get_registry().counter("resilience.recoveries").inc(op=op)

    def summary(self) -> str:
        per_rank = ", ".join(
            f"r{r}:{n}" for r, n in sorted(self.faults_by_rank.items())
        ) or "none"
        return (
            f"faults={self.total_faults} recoveries={self.total_recoveries} "
            f"backoff={self.total_backoff_s:.3f}s per-rank[{per_rank}]"
        )


class ResilientCommunicator:
    """Checksum-verify-and-retry wrapper around a :class:`SimCommunicator`.

    Duck-types the full communicator API: the five delivery ops the fault
    injectors can sabotage are guarded; everything else (``all_gather``,
    ``all_reduce``, ``reduce_scatter``, ``broadcast``, ``log`` …) delegates
    to the wrapped ``inner`` communicator.  Retransmissions go through the
    inner communicator again, so retried traffic is logged exactly like a
    real retransmit would appear on the wire.
    """

    def __init__(
        self,
        inner: SimCommunicator,
        *,
        retry: RetryPolicy | None = None,
        monitor: FaultMonitor | None = None,
    ):
        self.inner = inner
        self.retry = retry if retry is not None else RetryPolicy()
        self.monitor = monitor if monitor is not None else FaultMonitor()
        self.call_index = 0

    @property
    def topology(self) -> ClusterTopology:
        return self.inner.topology

    @property
    def log(self) -> TrafficLog:
        return self.inner.log

    @property
    def world_size(self) -> int:
        return self.inner.world_size

    def __getattr__(self, name: str):
        # Unguarded collectives and helpers pass straight through.
        return getattr(self.inner, name)

    # --- the guard ---------------------------------------------------------

    def _guarded(
        self,
        op: str,
        phase: str,
        tag: str,
        expected: list[object],
        issue: Callable[[], list[object]],
        channel: str = "fwd",
    ) -> list[object]:
        """Issue a delivery op, verify per-rank checksums, retry on damage."""
        self.call_index += 1
        idx = self.call_index
        with trace_span(f"resilient.{op}", phase="comm",
                        logical=phase, tag=tag, call=idx) as sp:
            advertised = [tree_checksum(e) for e in expected]
            bad: list[int] = []
            for attempt in range(self.retry.max_retries + 1):
                out = issue()
                bad = [
                    i for i, digest in enumerate(advertised)
                    if tree_checksum(out[i]) != digest
                ]
                if not bad:
                    if attempt:
                        self.monitor.record_recovery(op, idx, attempt + 1)
                    if sp:
                        sp["attempts"] = attempt + 1
                    return out
                self.monitor.record_fault(
                    op=op, phase=phase, tag=tag, call_index=idx, ranks=bad,
                    backoff_s=self.retry.delay(attempt), attempt=attempt,
                    channel=channel,
                )
            from repro.obs.flightrec import notify_failure

            notify_failure({
                "kind": "delivery", "type": "CommFailure", "op": op,
                "logical": phase, "tag": tag, "call_index": idx,
                "ranks": bad, "channel": channel,
            })
            raise CommFailure(
                op=op, phase=phase, tag=tag, call_index=idx, ranks=bad,
                attempts=self.retry.max_retries + 1, channel=channel,
            )

    # --- guarded delivery ops ----------------------------------------------

    def ring_shift(self, bufs, ring, *, phase, tag="", reverse=False):
        expected = list(bufs)
        k = len(ring)
        step = -1 if reverse else 1
        for pos in range(k):
            expected[ring[(pos + step) % k]] = bufs[ring[pos]]
        return self._guarded(
            "ring_shift", phase, tag, expected,
            lambda: self.inner.ring_shift(
                bufs, ring, phase=phase, tag=tag, reverse=reverse
            ),
            channel="rev" if reverse else "fwd",
        )

    def exchange(self, bufs, dest_of, *, phase, tag="", channel="fwd"):
        expected: list[object] = [None] * len(bufs)
        for src, dst in enumerate(dest_of):
            expected[dst] = bufs[src]
        return self._guarded(
            "exchange", phase, tag, expected,
            lambda: self.inner.exchange(
                bufs, dest_of, phase=phase, tag=tag, channel=channel
            ),
            channel=channel,
        )

    def all_to_all(self, chunks, *, phase, tag=""):
        g = len(chunks)
        expected = [[chunks[src][dst] for src in range(g)] for dst in range(g)]
        return self._guarded(
            "all_to_all", phase, tag, expected,
            lambda: self.inner.all_to_all(chunks, phase=phase, tag=tag),
        )

    def group_all_to_all(self, chunks, groups, *, phase, tag=""):
        expected: list[object] = [None] * self.world_size
        for grp in groups:
            for dst_pos, dst in enumerate(grp):
                expected[dst] = [chunks[src][dst_pos] for src in grp]
        return self._guarded(
            "group_all_to_all", phase, tag, expected,
            lambda: self.inner.group_all_to_all(
                chunks, groups, phase=phase, tag=tag
            ),
        )

    def send(self, src, dst, payload, *, phase, tag=""):
        # Single delivery: wrap it as a one-entry list so the same guard
        # machinery applies; a mismatch blames the destination rank.
        self.call_index += 1
        idx = self.call_index
        with trace_span("resilient.send", phase="comm",
                        logical=phase, tag=tag, call=idx) as sp:
            advertised = tree_checksum(payload)
            for attempt in range(self.retry.max_retries + 1):
                out = self.inner.send(src, dst, payload, phase=phase, tag=tag)
                if tree_checksum(out) == advertised:
                    if attempt:
                        self.monitor.record_recovery("send", idx, attempt + 1)
                    if sp:
                        sp["attempts"] = attempt + 1
                    return out
                self.monitor.record_fault(
                    op="send", phase=phase, tag=tag, call_index=idx, ranks=[dst],
                    backoff_s=self.retry.delay(attempt), attempt=attempt,
                )
            from repro.obs.flightrec import notify_failure

            notify_failure({
                "kind": "delivery", "type": "CommFailure", "op": "send",
                "logical": phase, "tag": tag, "call_index": idx,
                "ranks": [dst], "channel": "fwd",
            })
            raise CommFailure(
                op="send", phase=phase, tag=tag, call_index=idx, ranks=[dst],
                attempts=self.retry.max_retries + 1,
            )
