"""BurstEngine reproduction.

A faithful, fully-tested reproduction of *BurstEngine: an Efficient
Distributed Framework for Training Transformers on Extremely Long Sequences
of over 1M Tokens* (SC 2025) built on a simulated multi-node GPU cluster:

* exact numerics for every distributed attention algorithm (RingAttention,
  BurstAttention, DoubleRing, DeepSpeed-Ulysses, USP) verified against dense
  references;
* a traffic-accounting SPMD communicator whose logs reproduce the paper's
  communication-volume formulas;
* a discrete-event performance simulator that regenerates every table and
  figure of the paper's evaluation.

See :mod:`repro.engine` for the end-to-end training entry point and
:mod:`repro.experiments` for the paper's experiment harness.
"""

__version__ = "1.0.0"

# Top-level convenience re-exports (the full API lives in the subpackages;
# see docs/api.md).
from repro.attention import get_method  # noqa: E402
from repro.engine import BurstEngine, EngineConfig, Trainer  # noqa: E402
from repro.masks import CausalMask, SlidingWindowMask  # noqa: E402
from repro.models import LLAMA_7B, LLAMA_14B, ModelSpec  # noqa: E402
from repro.nn import TransformerConfig, TransformerLM  # noqa: E402
from repro.perf import end_to_end_step  # noqa: E402
from repro.topology import make_cluster  # noqa: E402

__all__ = [
    "get_method",
    "BurstEngine",
    "EngineConfig",
    "Trainer",
    "CausalMask",
    "SlidingWindowMask",
    "LLAMA_7B",
    "LLAMA_14B",
    "ModelSpec",
    "TransformerConfig",
    "TransformerLM",
    "end_to_end_step",
    "make_cluster",
]
