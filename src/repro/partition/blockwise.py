"""Block-wise balanced partition for block-sparse attention (Fig. 11).

For a block-sparse mask with block size ``N_blk``, tokens are striped
*within each block*: device ``i`` owns tokens ``{b*N_blk + i + G*m}`` for
every block ``b``.  Each device then holds an equal slice of every sparse
block, so whatever the block-masking matrix allows, the allowed work is
spread evenly — the paper notes ``N_blk`` must be a multiple of ``G`` for
this to tile exactly.
"""

from __future__ import annotations

import numpy as np

from repro.partition.base import Partitioner


class BlockwisePartitioner(Partitioner):
    name = "blockwise"

    def __init__(self, block_size: int):
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        self.block_size = block_size

    def indices(self, n: int, g: int) -> list[np.ndarray]:
        self._validate(n, g)
        if n % self.block_size != 0:
            raise ValueError(
                f"sequence length {n} is not a multiple of block_size "
                f"{self.block_size}"
            )
        if self.block_size % g != 0:
            raise ValueError(
                f"block_size {self.block_size} must be a multiple of the "
                f"device count {g} (paper's strict requirement)"
            )
        n_blocks = n // self.block_size
        out = []
        for i in range(g):
            per_block = [
                np.arange(b * self.block_size + i, (b + 1) * self.block_size, g,
                          dtype=np.int64)
                for b in range(n_blocks)
            ]
            out.append(np.concatenate(per_block))
        return out
