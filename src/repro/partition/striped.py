"""Striped partition (Eq. 13 of the paper; Brandon et al., Striped Attention).

Device ``i`` owns every ``G``-th token starting at ``i``:

    S_i = { i + G*m : m in [0, N/G) }

Every device's tokens are uniformly spread over the sequence, so causal
work is balanced to within one token per (device, device) tile — Eq. (14)'s
"drop the first key / last query" adjustment.  The paper's pilot experiments
found striped integration slightly better than zigzag for BurstEngine.
"""

from __future__ import annotations

import numpy as np

from repro.partition.base import Partitioner


class StripedPartitioner(Partitioner):
    name = "striped"

    def indices(self, n: int, g: int) -> list[np.ndarray]:
        self._validate(n, g)
        return [np.arange(i, n, g, dtype=np.int64) for i in range(g)]
