"""Sequence partitioners and workload-balance analysis.

A partitioner assigns each of the ``N`` token positions to one of ``G``
devices.  The choice is invisible to correctness (shards carry their global
index arrays, and masks are index predicates) but decides the *balance* of
attention work under causal and sparse masks — the subject of Section 3.4:

* :class:`ContiguousPartitioner` — naive blocks; under a causal mask device
  ``G-1`` does ``~2x`` the average work and device 0 almost none.
* :class:`ZigzagPartitioner` — each device gets one chunk from the front
  and the mirrored chunk from the back (Eq. 11/12).
* :class:`StripedPartitioner` — round-robin token placement (Eq. 13/14).
* :class:`BlockwisePartitioner` — striped placement *within* each sparse
  block (Fig. 11), balancing arbitrary block-sparse masks.
"""

from repro.partition.base import Partitioner
from repro.partition.contiguous import ContiguousPartitioner
from repro.partition.zigzag import ZigzagPartitioner
from repro.partition.striped import StripedPartitioner
from repro.partition.blockwise import BlockwisePartitioner
from repro.partition.workload import workload_per_device, imbalance_ratio

__all__ = [
    "Partitioner",
    "ContiguousPartitioner",
    "ZigzagPartitioner",
    "StripedPartitioner",
    "BlockwisePartitioner",
    "workload_per_device",
    "imbalance_ratio",
]
