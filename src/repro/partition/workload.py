"""Workload-balance analysis: attention work per device for a
(mask, partition) combination.

The unit of work is an allowed (query, key) pair — each costs ``O(d)``
FLOPs in both the score and the value matmul, so pair counts are exactly
proportional to attention FLOPs.  In ring-style context parallelism the
pass proceeds in ``G`` synchronous steps; the *step* workload of device
``i`` at step ``t`` is the allowed-pair count between its query shard and
the KV shard it holds at that step.  Because every step is a barrier, the
effective time of a step is the per-step **maximum** across devices —
:func:`effective_step_work` — which is what the Table 3 throughput model
consumes.
"""

from __future__ import annotations

import numpy as np

from repro.masks.patterns import MaskPattern
from repro.partition.base import Partitioner


def workload_per_device(
    mask: MaskPattern,
    partitioner: Partitioner,
    n: int,
    g: int,
) -> np.ndarray:
    """Total allowed pairs each device computes across all ring steps."""
    idxs = partitioner.indices(n, g)
    work = np.zeros(g, dtype=np.int64)
    for i in range(g):
        for j in range(g):
            work[i] += mask.num_allowed(idxs[i], idxs[j])
    return work


def step_workloads(
    mask: MaskPattern,
    partitioner: Partitioner,
    n: int,
    g: int,
    origins: list[list[int]] | None = None,
) -> np.ndarray:
    """Per-(step, device) allowed-pair counts, shape ``(G, G)``.

    ``origins[t][rank]`` gives the KV shard held by ``rank`` at step ``t``
    (from :meth:`repro.comm.RingSchedule.origins`); defaults to the flat
    ring ``origin = (rank - t) % G``.
    """
    idxs = partitioner.indices(n, g)
    out = np.zeros((g, g), dtype=np.int64)
    for t in range(g):
        for rank in range(g):
            j = origins[t][rank] if origins is not None else (rank - t) % g
            out[t, rank] = mask.num_allowed(idxs[rank], idxs[j])
    return out


def effective_step_work(
    mask: MaskPattern,
    partitioner: Partitioner,
    n: int,
    g: int,
    origins: list[list[int]] | None = None,
) -> int:
    """Sum over steps of the slowest device's work — the quantity that
    bounds ring-attention time under per-step synchronisation."""
    per_step = step_workloads(mask, partitioner, n, g, origins)
    return int(per_step.max(axis=1).sum())


def imbalance_ratio(
    mask: MaskPattern,
    partitioner: Partitioner,
    n: int,
    g: int,
) -> float:
    """``max / mean`` of per-device total work (1.0 = perfectly balanced)."""
    work = workload_per_device(mask, partitioner, n, g)
    mean = work.mean()
    if mean == 0:
        return 1.0
    return float(work.max() / mean)


def balance_report(
    mask: MaskPattern,
    partitioners: list[Partitioner],
    n: int,
    g: int,
) -> dict[str, dict[str, float]]:
    """Compare partitioners on one mask: total, per-device spread,
    effective (barrier-bounded) work, and speedup vs the worst scheme."""
    rows: dict[str, dict[str, float]] = {}
    for part in partitioners:
        work = workload_per_device(mask, part, n, g)
        rows[part.name] = {
            "total_pairs": int(work.sum()),
            "max_device_pairs": int(work.max()),
            "min_device_pairs": int(work.min()),
            "imbalance": float(work.max() / work.mean()) if work.mean() else 1.0,
            "effective_step_pairs": effective_step_work(mask, part, n, g),
        }
    worst = max(r["effective_step_pairs"] for r in rows.values())
    for r in rows.values():
        r["speedup_vs_worst"] = worst / r["effective_step_pairs"] if r["effective_step_pairs"] else float("inf")
    return rows
