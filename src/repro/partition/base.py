"""Partitioner interface: global-index bookkeeping for sequence shards."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np


class Partitioner(ABC):
    """Maps token positions ``0..n-1`` onto ``g`` devices.

    Invariant: the per-device index arrays are disjoint, sorted ascending
    within each device, and jointly cover ``range(n)``.  ``scatter`` /
    ``gather`` are exact inverses along the chosen axis.
    """

    name: str = "base"

    @abstractmethod
    def indices(self, n: int, g: int) -> list[np.ndarray]:
        """Global token indices owned by each device (``g`` arrays)."""

    def _validate(self, n: int, g: int) -> None:
        if g < 1:
            raise ValueError(f"need at least one device, got g={g}")
        if n % g != 0:
            raise ValueError(
                f"sequence length {n} is not divisible by device count {g}"
            )

    def scatter(self, x: np.ndarray, g: int, axis: int = -2) -> list[np.ndarray]:
        """Split ``x`` along ``axis`` according to the partition."""
        n = x.shape[axis]
        return [np.take(x, idx, axis=axis) for idx in self.indices(n, g)]

    def gather(self, parts: list[np.ndarray], axis: int = -2) -> np.ndarray:
        """Reassemble the full array from per-device shards (inverse of
        :meth:`scatter`)."""
        g = len(parts)
        n = sum(p.shape[axis] for p in parts)
        idxs = self.indices(n, g)
        out_shape = list(parts[0].shape)
        out_shape[axis] = n
        out = np.empty(out_shape, dtype=parts[0].dtype)
        # Build a single permutation so the write is one fancy-index op.
        order = np.concatenate(idxs)
        stacked = np.concatenate(parts, axis=axis)
        inv = np.empty(n, dtype=np.int64)
        inv[order] = np.arange(n)
        out = np.take(stacked, inv, axis=axis)
        return out
