"""Naive contiguous partition: device ``i`` gets tokens
``[i*N/G, (i+1)*N/G)``.  Simple, but maximally imbalanced for causal masks —
the later a device's chunk sits in the sequence, the more keys its queries
attend to."""

from __future__ import annotations

import numpy as np

from repro.partition.base import Partitioner


class ContiguousPartitioner(Partitioner):
    name = "contiguous"

    def indices(self, n: int, g: int) -> list[np.ndarray]:
        self._validate(n, g)
        p = n // g
        return [np.arange(i * p, (i + 1) * p, dtype=np.int64) for i in range(g)]
