"""Zigzag partition (Eq. 11 of the paper).

The sequence is cut into ``2G`` chunks of length ``P = N / (2G)``; device
``i`` (0-based) receives chunk ``i`` from the front and chunk ``2G-1-i``
from the back:

    S_i^1 = [i*P, (i+1)*P)            (front chunk)
    S_i^2 = [N - (i+1)*P, N - i*P)    (mirrored back chunk)

Under a causal mask, the front chunk of an early device is cheap but its
back chunk is expensive, and vice versa for late devices — the sum is the
same for every device, which is the balance property Megatron-CP and
LoongTrain rely on.
"""

from __future__ import annotations

import numpy as np

from repro.partition.base import Partitioner


class ZigzagPartitioner(Partitioner):
    name = "zigzag"

    def indices(self, n: int, g: int) -> list[np.ndarray]:
        self._validate(n, g)
        if n % (2 * g) != 0:
            raise ValueError(
                f"zigzag needs sequence length divisible by 2*G = {2 * g}, got {n}"
            )
        p = n // (2 * g)
        out = []
        for i in range(g):
            front = np.arange(i * p, (i + 1) * p, dtype=np.int64)
            back = np.arange(n - (i + 1) * p, n - i * p, dtype=np.int64)
            out.append(np.concatenate([front, back]))
        return out

    @staticmethod
    def front_back(idx: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Split a device's index array back into (front, back) halves."""
        half = len(idx) // 2
        return idx[:half], idx[half:]
