"""Attention mask patterns (causal, sliding-window, dilated, block-sparse).

Masks are defined as *predicates over global token positions*, not dense
matrices: :meth:`MaskPattern.block` takes arrays of global query indices and
global key indices and returns the boolean tile between them.  Because
distributed partitions (contiguous, zigzag, striped, block-balanced) carry
their global index arrays, every distributed attention method obtains the
correct mask for any shard pair for free — this is what makes the sparse
attention integration of the paper compose with ring communication.
"""

from repro.masks.patterns import (
    MaskPattern,
    FullMask,
    CausalMask,
    ALiBiMask,
    SlidingWindowMask,
    DilatedMask,
    LocalGlobalMask,
)
from repro.masks.blockmask import BlockSparseMask, sliding_window_block_mask

__all__ = [
    "MaskPattern",
    "FullMask",
    "CausalMask",
    "ALiBiMask",
    "SlidingWindowMask",
    "DilatedMask",
    "LocalGlobalMask",
    "BlockSparseMask",
    "sliding_window_block_mask",
]
