"""Index-predicate mask patterns.

Every pattern answers three questions about a (query-indices, key-indices)
tile:

* :meth:`~MaskPattern.block` — the boolean tile itself (``True`` = attend);
* :meth:`~MaskPattern.tile_state` — whether the tile is entirely allowed
  (``"full"``), entirely masked (``"empty"``), or mixed (``"partial"``),
  which lets kernels skip empty tiles and drop the mask for full ones; and
* :meth:`~MaskPattern.num_allowed` — the allowed-pair count, the unit of
  attention work used by the workload-balance analysis (Table 3 / Fig. 11).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np


class MaskPattern(ABC):
    """Base class for attention masks defined over global token positions."""

    @abstractmethod
    def block(self, q_idx: np.ndarray, k_idx: np.ndarray) -> np.ndarray:
        """Boolean tile of shape ``(len(q_idx), len(k_idx))``."""

    def dense(self, n: int) -> np.ndarray:
        """The full ``n x n`` mask (testing / reference use only)."""
        idx = np.arange(n)
        return self.block(idx, idx)

    def tile_state(self, q_idx: np.ndarray, k_idx: np.ndarray) -> str:
        """``"full"`` / ``"empty"`` / ``"partial"`` classification."""
        tile = self.block(q_idx, k_idx)
        if tile.all():
            return "full"
        if not tile.any():
            return "empty"
        return "partial"

    def bias_block(
        self, q_idx: np.ndarray, k_idx: np.ndarray
    ) -> np.ndarray | None:
        """Optional additive score bias for the tile (e.g. ALiBi).

        Returns an array broadcastable to ``(..., len(q), len(k))`` or
        ``None`` for bias-free patterns (the default).  Because the bias
        is a function of *global* positions, distributed shards resolve
        it correctly regardless of partitioning — same trick as the
        boolean masks.
        """
        return None

    def bias_cache_key(
        self, q_idx: np.ndarray, k_idx: np.ndarray
    ) -> tuple | None:
        """Hashable identity of the tile's bias, or ``None`` (uncacheable).

        Patterns whose bias is translation-invariant (a function of
        ``q - k`` only, like ALiBi) return a key so the kernel layer's
        :class:`~repro.kernels.tileplan.BiasTileCache` can share tiles
        across ring steps.  The default is ``None`` — never cached —
        which is always sound.
        """
        return None

    def num_allowed(self, q_idx: np.ndarray, k_idx: np.ndarray) -> int:
        """Number of allowed (query, key) pairs in the tile."""
        return int(self.block(q_idx, k_idx).sum())

    def total_allowed(self, n: int) -> int:
        """Allowed pairs over the whole ``n x n`` attention (exact)."""
        idx = np.arange(n)
        return self.num_allowed(idx, idx)


class FullMask(MaskPattern):
    """No masking: every query attends to every key."""

    def block(self, q_idx: np.ndarray, k_idx: np.ndarray) -> np.ndarray:
        return np.ones((len(q_idx), len(k_idx)), dtype=bool)

    def tile_state(self, q_idx: np.ndarray, k_idx: np.ndarray) -> str:
        return "full"

    def num_allowed(self, q_idx: np.ndarray, k_idx: np.ndarray) -> int:
        return len(q_idx) * len(k_idx)


class CausalMask(MaskPattern):
    """Autoregressive masking: position ``q`` attends to ``k <= q``."""

    def block(self, q_idx: np.ndarray, k_idx: np.ndarray) -> np.ndarray:
        return q_idx[:, None] >= k_idx[None, :]

    def tile_state(self, q_idx: np.ndarray, k_idx: np.ndarray) -> str:
        # O(1) interval test — tiles at distributed scale are huge and the
        # dependency analysis must not materialise them.
        if q_idx.min() >= k_idx.max():
            return "full"
        if q_idx.max() < k_idx.min():
            return "empty"
        return "partial"

    def total_allowed(self, n: int) -> int:
        return n * (n + 1) // 2


class SlidingWindowMask(MaskPattern):
    """Causal sliding window: attend to the last ``window`` positions.

    ``q`` attends to ``k`` iff ``0 <= q - k < window``.  This is the SWA
    pattern of Table 3 (the paper uses a 32K window over 1M tokens).
    """

    def __init__(self, window: int):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.window = window

    def block(self, q_idx: np.ndarray, k_idx: np.ndarray) -> np.ndarray:
        diff = q_idx[:, None] - k_idx[None, :]
        return (diff >= 0) & (diff < self.window)

    def tile_state(self, q_idx: np.ndarray, k_idx: np.ndarray) -> str:
        """O(1) conservative interval test.

        The ``full``/``empty`` verdicts below are exact; index sets whose
        pairwise differences skip the window entirely may be classified
        ``partial`` (safe — the kernel then discovers the empty tile).
        """
        diff_min = q_idx.min() - k_idx.max()
        diff_max = q_idx.max() - k_idx.min()
        if diff_min >= 0 and diff_max < self.window:
            return "full"
        if diff_max < 0 or diff_min >= self.window:
            return "empty"
        return "partial"


class DilatedMask(MaskPattern):
    """Causal dilated attention: attend to ``k <= q`` with
    ``(q - k) % dilation == 0``, optionally limited to ``window`` reachable
    positions (LongNet-style)."""

    def __init__(self, dilation: int, window: int | None = None):
        if dilation < 1:
            raise ValueError(f"dilation must be >= 1, got {dilation}")
        self.dilation = dilation
        self.window = window

    def block(self, q_idx: np.ndarray, k_idx: np.ndarray) -> np.ndarray:
        diff = q_idx[:, None] - k_idx[None, :]
        allowed = (diff >= 0) & (diff % self.dilation == 0)
        if self.window is not None:
            allowed &= diff < self.window * self.dilation
        return allowed


class ALiBiMask(CausalMask):
    """Causal masking with ALiBi linear position bias (Press et al.).

    Head ``h`` receives bias ``-slope_h * (q - k)`` with geometric slopes
    ``2^(-8(h+1)/H)``.  Encoded as a mask-with-bias so the entire
    distributed stack (ring circulation, zigzag/striped partitions,
    selective fetch) supports ALiBi without special cases.
    """

    def __init__(self, n_heads: int):
        if n_heads < 1:
            raise ValueError(f"n_heads must be >= 1, got {n_heads}")
        self.n_heads = n_heads
        self.slopes = 2.0 ** (-8.0 * (np.arange(n_heads) + 1) / n_heads)

    def bias_block(self, q_idx: np.ndarray, k_idx: np.ndarray) -> np.ndarray:
        dist = (q_idx[:, None] - k_idx[None, :]).astype(np.float64)
        return -self.slopes[:, None, None] * dist

    def bias_cache_key(
        self, q_idx: np.ndarray, k_idx: np.ndarray
    ) -> tuple | None:
        # The bias depends only on pairwise differences, so two contiguous
        # tiles with the same (q0 - k0) offset and shape share one tile —
        # this is what lets ring passes reuse ALiBi tiles across steps.
        def _contig(idx: np.ndarray) -> bool:
            if len(idx) == 0 or int(idx[-1]) - int(idx[0]) != len(idx) - 1:
                return False
            return len(idx) == 1 or bool((np.diff(idx) == 1).all())

        if _contig(q_idx) and _contig(k_idx):
            return (int(q_idx[0]) - int(k_idx[0]), len(q_idx), len(k_idx))
        return None

    def dense_bias(self, n: int) -> np.ndarray:
        """Full ``(H, n, n)`` bias tensor (testing / reference use)."""
        idx = np.arange(n)
        return self.bias_block(idx, idx)


class LocalGlobalMask(MaskPattern):
    """Causal local window plus a set of global tokens everyone attends to
    (Longformer-style): ``q`` attends to ``k`` if ``k`` is within the local
    window, or ``k < num_global`` (a global token), always causally."""

    def __init__(self, window: int, num_global: int):
        if window < 1 or num_global < 0:
            raise ValueError("window must be >= 1 and num_global >= 0")
        self.window = window
        self.num_global = num_global

    def block(self, q_idx: np.ndarray, k_idx: np.ndarray) -> np.ndarray:
        diff = q_idx[:, None] - k_idx[None, :]
        local = (diff >= 0) & (diff < self.window)
        global_k = (k_idx[None, :] < self.num_global) & (diff >= 0)
        return local | global_k
