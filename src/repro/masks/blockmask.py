"""Block-wise sparse masks (Section 3.4 of the paper).

The sequence is divided into blocks of ``block_size`` tokens and a
``(n_blocks x n_blocks)`` boolean *block-masking matrix* ``M_blk`` states
which block pairs may attend (``M_blk[i, j] = 1`` iff every token of block
``i`` may attend to every token of block ``j``).  An optional
``intra_block_causal`` flag additionally applies token-level causality, so
common patterns like block-wise sliding-window attention stay autoregressive.
"""

from __future__ import annotations

import numpy as np

from repro.masks.patterns import MaskPattern


class BlockSparseMask(MaskPattern):
    """Token-level mask induced by a block-masking matrix.

    Parameters
    ----------
    block_size:
        Tokens per block (the paper's ``N_blk``).
    block_mask:
        Boolean ``(n_blocks, n_blocks)`` matrix; entry ``[i, j]`` allows
        block ``i``'s tokens to attend to block ``j``'s tokens.
    intra_block_causal:
        If ``True``, token-level causality ``k <= q`` is applied on top of
        the block structure (needed for autoregressive training).
    """

    def __init__(
        self,
        block_size: int,
        block_mask: np.ndarray,
        intra_block_causal: bool = True,
    ):
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        block_mask = np.asarray(block_mask, dtype=bool)
        if block_mask.ndim != 2 or block_mask.shape[0] != block_mask.shape[1]:
            raise ValueError(f"block_mask must be square 2-D, got {block_mask.shape}")
        self.block_size = block_size
        self.block_mask = block_mask
        self.intra_block_causal = intra_block_causal

    @property
    def n_blocks(self) -> int:
        return self.block_mask.shape[0]

    @property
    def seq_len(self) -> int:
        return self.n_blocks * self.block_size

    def block(self, q_idx: np.ndarray, k_idx: np.ndarray) -> np.ndarray:
        qb = np.asarray(q_idx) // self.block_size
        kb = np.asarray(k_idx) // self.block_size
        if (qb >= self.n_blocks).any() or (kb >= self.n_blocks).any():
            raise ValueError(
                f"token index beyond mask extent ({self.seq_len} tokens)"
            )
        allowed = self.block_mask[qb[:, None], kb[None, :]]
        if self.intra_block_causal:
            allowed = allowed & (
                np.asarray(q_idx)[:, None] >= np.asarray(k_idx)[None, :]
            )
        return allowed

    def tile_state(self, q_idx: np.ndarray, k_idx: np.ndarray) -> str:
        """Block-level test that avoids materialising token tiles.

        Exact for ``empty``; ``full`` only without intra-block causality
        (with it, diagonal blocks are always partial at token level).
        """
        qb = np.unique(np.asarray(q_idx) // self.block_size)
        kb = np.unique(np.asarray(k_idx) // self.block_size)
        if (qb >= self.n_blocks).any() or (kb >= self.n_blocks).any():
            raise ValueError(
                f"token index beyond mask extent ({self.seq_len} tokens)"
            )
        sub = self.block_mask[np.ix_(qb, kb)]
        if not sub.any():
            return "empty"
        if self.intra_block_causal:
            if int(np.asarray(q_idx).min()) >= int(np.asarray(k_idx).max()) and sub.all():
                return "full"
            return "partial"
        return "full" if sub.all() else "partial"

    def block_density(self) -> float:
        """Fraction of allowed block pairs (compute saving upper bound)."""
        return float(self.block_mask.mean())


def sliding_window_block_mask(
    seq_len: int,
    block_size: int,
    window_blocks: int,
    causal: bool = True,
) -> BlockSparseMask:
    """Block-wise sliding-window attention (the paper's SWA setting).

    Block ``i`` attends to blocks ``i - window_blocks + 1 .. i`` (and only
    backwards when ``causal``).  With ``block_size = 32K`` over 1M tokens
    and ``window_blocks = 1`` this reproduces the Table 3 SWA workload.
    """
    if seq_len % block_size != 0:
        raise ValueError(
            f"seq_len {seq_len} is not a multiple of block_size {block_size}"
        )
    n_blocks = seq_len // block_size
    i = np.arange(n_blocks)
    diff = i[:, None] - i[None, :]
    if causal:
        allowed = (diff >= 0) & (diff < window_blocks)
    else:
        allowed = np.abs(diff) < window_blocks
    return BlockSparseMask(block_size, allowed, intra_block_causal=causal)
