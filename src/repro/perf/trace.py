"""Export DES timelines as Chrome trace JSON (``chrome://tracing`` /
Perfetto) for visual inspection of the overlap structure."""

from __future__ import annotations

import json

from repro.perf.des import Simulator


def trace_to_chrome_json(sim: Simulator, path: str | None = None) -> str:
    """Serialise a completed simulation as a Chrome trace.

    Tasks are grouped by their first resource ("compute", "intra",
    "inter") into trace rows.  Run :meth:`Simulator.run` first.  Returns
    the JSON string and optionally writes it to ``path``.
    """
    events = []
    rows: dict[str, int] = {}
    for task in sim.timeline():
        row = task.resources[0] if task.resources else "free"
        tid = rows.setdefault(row, len(rows) + 1)
        events.append(
            {
                "name": task.name,
                "ph": "X",
                "ts": round(task.start * 1e6, 3),   # chrome traces use us
                "dur": round(task.duration * 1e6, 3),
                "pid": 1,
                "tid": tid,
                "args": {"resource": row, "deps": list(task.deps)},
            }
        )
    for row, tid in rows.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": row},
            }
        )
    payload = json.dumps({"traceEvents": events}, indent=2)
    if path is not None:
        with open(path, "w") as fh:
            fh.write(payload)
    return payload
