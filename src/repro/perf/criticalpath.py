"""Predicted critical-path construction and summaries for attention passes.

One attention pass (forward or backward) of a ring-family method is a
small task graph: per-step compute on the ``compute`` resource overlapped
with ring transitions on the ``intra`` / ``inter`` link resources (plus
their ``-rev`` twins under the bidirectional mode).  This module owns the
graph builder — previously private to :func:`repro.obs.report
.build_predicted_trace` — so both the predicted Chrome trace and the
observed-trace replay in :mod:`repro.obs.critical` price the *same*
dependency structure and differ only in transition durations.

:func:`summarize_sim` reduces a run simulator to the quantities the
attribution gate compares: makespan, compute-busy and comm-busy seconds,
and the *exposed* communication time (makespan minus compute busy — the
comm seconds the overlap failed to hide, Fig. 5's whole argument).
:func:`closed_form_pass_comm` gives the serialized comm seconds of one
unidirectional pass straight from the :func:`repro.perf.cost
.attention_step_sizes` closed forms, with no simulation at all.
"""

from __future__ import annotations

from repro.perf.cost import (
    attention_step_sizes,
    bidirectional_step_split,
    matmul_time,
)
from repro.perf.des import Simulator
from repro.perf.schedules.attention import (
    ATTENTION_EFFICIENCY,
    BACKWARD_FLOPS_FACTOR,
    _bidirectional_ring,
    _pipelined_ring,
    _rev_transition_list,
    _transition_durations,
)

__all__ = [
    "METHOD_DES_FLAGS",
    "attention_pass_sim",
    "closed_form_pass_comm",
    "predicted_critical_path",
    "summarize_sim",
]

#: DES pass-construction flags per ring-family method (mirrors
#: :func:`repro.perf.schedules.attention.attention_pass_time`).
METHOD_DES_FLAGS = {
    "megatron-cp": dict(flat=True, serialize_gradients=True, alg2=False),
    "loongtrain-double": dict(flat=False, serialize_gradients=True, alg2=False),
    "burst": dict(flat=False, serialize_gradients=False, alg2=True),
}


def _method_flags(method: str) -> dict:
    if method not in METHOD_DES_FLAGS:
        raise ValueError(
            f"no DES pass graph for method {method!r}; "
            f"expected one of {sorted(METHOD_DES_FLAGS)}"
        )
    return METHOD_DES_FLAGS[method]


def _pass_transition_lists(
    method: str,
    topology,
    workload,
    *,
    backward: bool,
    ring_mode: str = "unidirectional",
    ring_window: int | None = None,
) -> tuple[list[tuple[str, float]], list[tuple[str, float]] | None]:
    """Modeled ``(resource, duration)`` lists of one pass's two streams.

    Returns ``(fwd_list, rev_list)``; ``rev_list`` is ``None`` under the
    unidirectional mode.  Note the unidirectional serialize-gradients
    backward returns the *KV-only* list — the gradient drain doubles it
    (Table 1's ``+2(I·T_i + E·T_e)``), which :func:`attention_pass_sim`
    and :func:`closed_form_pass_comm` each apply in their own way.
    """
    flags = _method_flags(method)
    g = topology.world_size
    shard = workload.shard_bytes(g)
    kv_shard = workload.kv_shard_bytes(g)
    bidirectional = ring_mode == "bidirectional"
    t_f, rev_moves = bidirectional_step_split(g)

    def durations(payload: float) -> list[tuple[str, float]]:
        return _transition_durations(topology, payload, flags["flat"], ring_window)

    if not backward:
        kv = durations(2 * kv_shard)
        if bidirectional:
            return kv[:t_f], _rev_transition_list(kv, rev_moves)
        return kv, None
    if flags["alg2"]:
        if bidirectional:
            full = durations(shard * (3 + 2 / workload.hidden))
            dq = durations(shard)
            ro = durations(shard * (2 + 2 / workload.hidden))
            return full[:t_f] + dq[t_f:], _rev_transition_list(ro, rev_moves)
        return durations(shard * (3 + 2 / workload.hidden)), None
    kv = durations(2 * kv_shard)
    if bidirectional:
        full = durations(4 * kv_shard)
        return full[:t_f] + kv[t_f:], _rev_transition_list(kv, rev_moves)
    return kv, None


def attention_pass_sim(
    method: str,
    topology,
    workload,
    *,
    backward: bool,
    ring_mode: str = "unidirectional",
    ring_window: int | None = None,
    prefix: str | None = None,
    fwd_durations: list[tuple[str, float]] | None = None,
    rev_durations: list[tuple[str, float]] | None = None,
) -> Simulator:
    """Build and run the DES task graph of one attention pass.

    With the default modeled durations this is exactly the graph behind
    :func:`repro.obs.report.build_predicted_trace`.  Passing
    ``fwd_durations`` / ``rev_durations`` substitutes per-position
    transition durations (e.g. priced from an *observed* trace's logged
    bytes) while keeping the method's dependency structure — the replay
    the exposed-comm attribution gate compares against the prediction.
    For the unidirectional serialize-gradients backward, substituted
    durations must price the full KV+gradient payload; the builder splits
    each in half between the overlapped KV circulation and the serial
    gradient drain, mirroring what the modeled graph does with the same
    total bytes.
    """
    flags = _method_flags(method)
    g = topology.world_size
    peak = topology.node.gpu.peak_flops
    flops = workload.fwd_flops_per_gpu(g)
    if backward:
        flops *= BACKWARD_FLOPS_FACTOR
    step_compute = matmul_time(flops / g, peak, ATTENTION_EFFICIENCY)
    if prefix is None:
        prefix = "attn-bwd/" if backward else "attn-fwd/"
    fwd_list, rev_list = _pass_transition_lists(
        method, topology, workload,
        backward=backward, ring_mode=ring_mode, ring_window=ring_window,
    )
    serialize_uni = (
        backward
        and not flags["alg2"]
        and flags["serialize_gradients"]
        and ring_mode != "bidirectional"
    )
    if fwd_durations is not None:
        if len(fwd_durations) != len(fwd_list):
            raise ValueError(
                f"{method} {prefix!r}: expected {len(fwd_list)} forward "
                f"transitions per pass, got {len(fwd_durations)}"
            )
        fwd_list = [
            (res, dur / 2 if serialize_uni else dur)
            for res, dur in fwd_durations
        ]
    if rev_durations is not None:
        expected = len(rev_list or [])
        if len(rev_durations) != expected:
            raise ValueError(
                f"{method} {prefix!r}: expected {expected} reverse moves "
                f"per pass, got {len(rev_durations)}"
            )
        rev_list = list(rev_durations)

    sim = Simulator()
    if ring_mode == "bidirectional":
        _bidirectional_ring(
            sim, prefix, g, fwd_list, rev_list or [], step_compute, backward
        )
    elif not backward:
        _pipelined_ring(sim, prefix, fwd_list, step_compute, False)
    elif flags["alg2"]:
        _pipelined_ring(sim, prefix, fwd_list, step_compute, True)
    elif flags["serialize_gradients"]:
        last = _pipelined_ring(sim, prefix, fwd_list, step_compute, False)
        # LoongTrain / Megatron drain the gradient buffers serially after
        # compute (Table 1's +2(I·T_i + E·T_e)).
        for t, (res, dur) in enumerate(fwd_list):
            name = f"{prefix}g{t}"
            sim.add(name, dur, resources=(res,), deps=(last,))
            last = name
    else:
        both = [(res, 2 * dur) for res, dur in fwd_list]
        _pipelined_ring(sim, prefix, both, step_compute, True)
    sim.run()
    return sim


def summarize_sim(sim: Simulator) -> dict[str, float]:
    """Critical-path summary of a run pass simulator.

    ``exposed_comm_s`` is the communication time the overlap failed to
    hide — makespan minus compute-busy; ``overlapped_comm_s`` is the rest
    of the comm-busy seconds.  All values are modeled (A800) seconds.
    """
    makespan = 0.0
    compute_busy = 0.0
    comm_busy = 0.0
    for task in sim.timeline():
        if task.end is not None:
            makespan = max(makespan, task.end)
        if "compute" in task.resources:
            compute_busy += task.duration
        elif task.resources:
            comm_busy += task.duration
    exposed = max(0.0, makespan - compute_busy)
    return {
        "makespan_s": makespan,
        "compute_busy_s": compute_busy,
        "comm_busy_s": comm_busy,
        "exposed_comm_s": exposed,
        "overlapped_comm_s": max(0.0, comm_busy - exposed),
        "exposed_comm_frac": exposed / makespan if makespan else 0.0,
    }


def predicted_critical_path(
    method: str,
    topology,
    workload,
    *,
    ring_mode: str = "unidirectional",
    ring_window: int | None = None,
) -> dict[str, dict[str, float]]:
    """Per-pass and total critical-path summaries for fwd + bwd attention."""
    out: dict[str, dict[str, float]] = {}
    for logical, backward in (("attn-fwd", False), ("attn-bwd", True)):
        sim = attention_pass_sim(
            method, topology, workload,
            backward=backward, ring_mode=ring_mode, ring_window=ring_window,
        )
        out[logical] = summarize_sim(sim)
    total = {
        k: out["attn-fwd"][k] + out["attn-bwd"][k]
        for k in ("makespan_s", "compute_busy_s", "comm_busy_s",
                  "exposed_comm_s", "overlapped_comm_s")
    }
    total["exposed_comm_frac"] = (
        total["exposed_comm_s"] / total["makespan_s"]
        if total["makespan_s"] else 0.0
    )
    out["total"] = total
    return out


def closed_form_pass_comm(
    method: str,
    topology,
    workload,
    *,
    backward: bool,
    ring_window: int | None = None,
) -> float:
    """Serialized comm seconds of one *unidirectional* pass, closed-form.

    Prices every transition of the method's ring at the per-hop bundle
    size from :func:`repro.perf.cost.attention_step_sizes` (``fwd`` /
    ``bwd_alg1`` / ``bwd_alg2``) — no DES involved, so an observed
    trace's comm-busy seconds can be cross-checked against the paper's
    Table-1 cost terms independently of the overlap model.
    """
    flags = _method_flags(method)
    g = topology.world_size
    sizes = attention_step_sizes(
        workload.seq_len, workload.hidden, g, workload.bytes_per_elem
    )
    if not backward:
        payload = sizes["fwd"]
    elif flags["alg2"]:
        payload = sizes["bwd_alg2"]
    else:
        payload = sizes["bwd_alg1"]
    durs = _transition_durations(topology, payload, flags["flat"], ring_window)
    return sum(dur for _, dur in durs)
