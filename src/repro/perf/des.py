"""A small discrete-event simulator for overlap analysis.

Tasks have a fixed duration, a set of dependencies, and a set of
unit-capacity resources (e.g. ``"compute"``, ``"intra"``, ``"inter"`` for
one representative GPU in an SPMD program).  A task starts as soon as all
dependencies have finished *and* all its resources are free; ties are
broken by insertion order (FIFO), which matches how a CUDA stream executes
enqueued work.

The simulator returns the makespan and a per-task timeline that
:mod:`repro.perf.trace` can export as a Chrome trace for inspection.  This
is the machinery that turns the paper's overlap diagrams (Fig. 5) into
numbers: the same task durations under different dependency structures
yield RingAttention vs DoubleRing vs BurstAttention timings.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field


@dataclass
class Task:
    """One unit of work.

    Attributes
    ----------
    name:
        Unique identifier (also used in traces).
    duration:
        Simulated seconds the task occupies its resources.
    resources:
        Resource names this task needs exclusively while running.
    deps:
        Names of tasks that must finish first.
    """

    name: str
    duration: float
    resources: tuple[str, ...] = ()
    deps: tuple[str, ...] = ()
    start: float | None = None
    end: float | None = None

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"task {self.name!r} has negative duration")
        self.resources = tuple(self.resources)
        self.deps = tuple(self.deps)


class Resource:
    """Unit-capacity resource; busy-until timestamp."""

    def __init__(self, name: str):
        self.name = name
        self.free_at = 0.0


class Simulator:
    """Dependency- and resource-aware list scheduler."""

    def __init__(self):
        self.tasks: dict[str, Task] = {}
        self._order: int = 0
        self._insertion: dict[str, int] = {}

    def add(
        self,
        name: str,
        duration: float,
        resources: tuple[str, ...] | list[str] = (),
        deps: tuple[str, ...] | list[str] = (),
    ) -> Task:
        """Add a task; dependencies may be added before their targets."""
        if name in self.tasks:
            raise ValueError(f"duplicate task name {name!r}")
        task = Task(name, duration, tuple(resources), tuple(deps))
        self.tasks[name] = task
        self._insertion[name] = self._order
        self._order += 1
        return task

    def run(self) -> float:
        """Execute the graph; returns the makespan.

        Greedy event-driven scheduling: at each point in virtual time, all
        ready tasks whose resources are free are started in insertion
        order.  Raises on unknown dependencies or dependency cycles.
        """
        for task in self.tasks.values():
            for dep in task.deps:
                if dep not in self.tasks:
                    raise ValueError(
                        f"task {task.name!r} depends on unknown {dep!r}"
                    )

        resources: dict[str, Resource] = {}
        for task in self.tasks.values():
            for r in task.resources:
                resources.setdefault(r, Resource(r))

        pending = set(self.tasks)
        done_at: dict[str, float] = {}
        now = 0.0
        makespan = 0.0

        while pending:
            started_any = False
            # Ready = all deps complete by `now`.
            ready = sorted(
                (
                    name
                    for name in pending
                    if all(
                        dep in done_at and done_at[dep] <= now
                        for dep in self.tasks[name].deps
                    )
                ),
                key=self._insertion.__getitem__,
            )
            for name in ready:
                task = self.tasks[name]
                if any(resources[r].free_at > now for r in task.resources):
                    continue
                task.start = now
                task.end = now + task.duration
                for r in task.resources:
                    resources[r].free_at = task.end
                done_at[name] = task.end
                makespan = max(makespan, task.end)
                pending.discard(name)
                started_any = True
            if not pending:
                break
            if started_any:
                continue
            # Advance time to the next event: a resource freeing or a
            # dependency completing strictly after `now`.
            horizon = [t for t in done_at.values() if t > now]
            horizon += [r.free_at for r in resources.values() if r.free_at > now]
            if not horizon:
                cycle = sorted(pending)
                raise ValueError(f"deadlock / dependency cycle among {cycle}")
            now = min(horizon)
        return makespan

    def timeline(self) -> list[Task]:
        """Tasks sorted by start time (call after :meth:`run`)."""
        return sorted(
            (t for t in self.tasks.values() if t.start is not None),
            key=lambda t: (t.start, self._insertion[t.name]),
        )

    def critical_path_lower_bound(self) -> float:
        """Longest dependency chain ignoring resources (sanity bound)."""
        memo: dict[str, float] = {}

        def longest(name: str, visiting: set[str]) -> float:
            if name in memo:
                return memo[name]
            if name in visiting:
                raise ValueError(f"dependency cycle through {name!r}")
            visiting.add(name)
            task = self.tasks[name]
            best = max((longest(d, visiting) for d in task.deps), default=0.0)
            visiting.discard(name)
            memo[name] = best + task.duration
            return memo[name]

        return max((longest(n, set()) for n in self.tasks), default=0.0)
