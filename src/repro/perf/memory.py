"""Per-GPU peak-memory model (Figures 7, 8, 13; Tables 2, 4, 5).

Accounts the five stores that dominate long-context training memory:

1. **Parameter / gradient shards** — bf16, divided by the FSDP world size
   (Megatron-CP in the paper has no FSDP, so its replicated weights and
   fp32 optimizer states alone exceed 80 GB: the Fig. 13 OOM).
2. **Optimizer states** — Adam moments + fp32 master copy, 12 B/param,
   FSDP-sharded, zero on-GPU when ZeRO-Offload is enabled (Table 5).
3. **Activations** — per layer, per local token, under the checkpoint
   policy: everything (~17 x S_loc x h elems), only the layer input (1x),
   input + whitelisted attention output (2x, selective++), or input +
   a suffix of the attention output (sequence-level).
4. **LM head** — the ``S_loc x v`` logits (+ their gradient) for a naive
   head, ~nothing for tiled/fused (Fig. 8).
5. **Transient working set** — one layer's full activations live during
   recompute/backward, plus communication buffers.

DeepSpeed-Ulysses' head-divisibility limit is modelled explicitly: its
effective sequence-parallel degree is the largest divisor of the head
count not exceeding the world size, so a 14B model (40 heads) on 32 GPUs
shards the sequence only 8-way — the Fig. 13 OOM at 1M tokens.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.models import ModelSpec


#: Stored activation elements per layer per token without checkpointing,
#: in units of the hidden size: block input, q/k/v, attention out, Wo in,
#: two norm outputs, FFN gate/up/silu-product/down-in (ffn/h ~ 2.7 each).
FULL_ACTIVATION_FACTOR = 17.0

BYTES_BF16 = 2
#: Adam moments (2 x fp32) + fp32 master weights.
BYTES_OPTIMIZER_PER_PARAM = 12
GB = 1e9


def ulysses_effective_degree(n_heads: int, world: int) -> int:
    """Largest head-parallel degree Ulysses can actually use.

    The degree must divide both the head count (each rank holds whole
    heads) and the world size (it defines a process-group factorisation) —
    e.g. 40 heads on 32 GPUs caps the degree at 8, so each GPU holds a
    4x longer sequence slice than full context parallelism would: the
    source of the paper's 14B Ulysses OOM (Fig. 13).
    """
    best = 1
    for d in range(1, world + 1):
        if n_heads % d == 0 and world % d == 0:
            best = d
    return best


@dataclass(frozen=True)
class TrainingSetup:
    """One cell of the paper's evaluation grid."""

    model: ModelSpec
    seq_len: int
    world: int
    method: str = "burst"
    fsdp: bool = True
    #: ZeRO stage refinement: None derives 3 from ``fsdp=True`` / 0 from
    #: ``False``; explicit 1/2/3 shard optimizer / +grads / +params.
    zero_stage: int | None = None
    optimizer_offload: bool = False
    checkpoint: str = "full"  # none | full | selective_pp | sequence_level
    split_fraction: float = 0.5
    head_mode: str = "fused"  # naive | tiled | fused
    gpu_memory_bytes: float = 80 * GB

    def local_seq(self) -> float:
        """Tokens resident per GPU after sequence sharding."""
        if self.method == "ulysses":
            degree = ulysses_effective_degree(self.model.n_heads, self.world)
            return self.seq_len / degree
        return self.seq_len / self.world


@dataclass
class MemoryBreakdown:
    """Per-GPU bytes by category."""

    params: float
    grads: float
    optimizer: float
    activations: float
    lm_head: float
    transient: float
    budget: float = 80 * GB
    notes: list[str] = field(default_factory=list)

    @property
    def total(self) -> float:
        return (
            self.params + self.grads + self.optimizer
            + self.activations + self.lm_head + self.transient
        )

    @property
    def total_gb(self) -> float:
        return self.total / GB

    @property
    def oom(self) -> bool:
        return self.total > self.budget

    def as_dict(self) -> dict[str, float]:
        return {
            "params_gb": self.params / GB,
            "grads_gb": self.grads / GB,
            "optimizer_gb": self.optimizer / GB,
            "activations_gb": self.activations / GB,
            "lm_head_gb": self.lm_head / GB,
            "transient_gb": self.transient / GB,
            "total_gb": self.total_gb,
            "oom": self.oom,
        }


class MemoryModel:
    """Evaluate :class:`TrainingSetup` cells into per-GPU peaks."""

    def checkpoint_factor(self, setup: TrainingSetup) -> float:
        """Stored activation elems per layer per token, in hidden units."""
        kind = setup.checkpoint
        if kind == "none":
            return FULL_ACTIVATION_FACTOR
        if kind == "full":
            return 1.0
        if kind == "selective_pp":
            return 2.0  # layer input + whitelisted attention output
        if kind == "sequence_level":
            return 1.0 + (1.0 - setup.split_fraction)
        raise ValueError(f"unknown checkpoint policy {setup.checkpoint!r}")

    def activation_bytes(self, setup: TrainingSetup) -> float:
        s_loc = setup.local_seq()
        per_layer = self.checkpoint_factor(setup) * s_loc * setup.model.hidden
        return per_layer * setup.model.n_layers * BYTES_BF16

    def lm_head_bytes(self, setup: TrainingSetup) -> float:
        s_loc = setup.local_seq()
        v = setup.model.vocab
        if setup.head_mode == "naive":
            return s_loc * v * BYTES_BF16  # materialised logits (Fig. 8)
        if setup.head_mode == "tiled":
            return s_loc * 4  # fp32 lse row statistics
        if setup.head_mode == "fused":
            return 0.0
        raise ValueError(f"unknown head mode {setup.head_mode!r}")

    def state_bytes(self, setup: TrainingSetup) -> tuple[float, float, float]:
        """(params, grads, optimizer) per GPU.

        ZeRO stages shard progressively: stage 1 the optimizer states,
        stage 2 also the gradients, stage 3 (= FSDP) also the parameters.
        With ZeRO-Offload, optimizer states live on the host and gradient
        shards stream there as they are produced, so on-GPU gradient
        memory is roughly one layer's worth rather than the full model.
        """
        n = setup.model.n_params
        stage = setup.zero_stage
        if stage is None:
            stage = 3 if setup.fsdp else 0
        if stage not in (0, 1, 2, 3):
            raise ValueError(f"zero_stage must be 0..3, got {stage}")
        g = setup.world
        params = n * BYTES_BF16 / (g if stage >= 3 else 1)
        if setup.optimizer_offload:
            grads = n * BYTES_BF16 / max(setup.model.n_layers, 1)
            optimizer = 0.0
        else:
            grads = n * BYTES_BF16 / (g if stage >= 2 else 1)
            optimizer = n * BYTES_OPTIMIZER_PER_PARAM / (g if stage >= 1 else 1)
        return params, grads, optimizer

    def transient_bytes(self, setup: TrainingSetup) -> float:
        """One layer's live working set plus communication buffers."""
        s_loc = setup.local_seq()
        h = setup.model.hidden
        layer_live = FULL_ACTIVATION_FACTOR * s_loc * h * BYTES_BF16
        # Triple-buffered ring communication (compute/intra/inter) of a
        # K+V-sized bundle, or all-to-all staging for Ulysses.
        comm = 3 * 2 * s_loc * h * BYTES_BF16
        return layer_live + comm

    def breakdown(self, setup: TrainingSetup) -> MemoryBreakdown:
        params, grads, optimizer = self.state_bytes(setup)
        bd = MemoryBreakdown(
            params=params,
            grads=grads,
            optimizer=optimizer,
            activations=self.activation_bytes(setup),
            lm_head=self.lm_head_bytes(setup),
            transient=self.transient_bytes(setup),
            budget=setup.gpu_memory_bytes,
        )
        if setup.method == "ulysses":
            eff = ulysses_effective_degree(setup.model.n_heads, setup.world)
            if eff < setup.world:
                bd.notes.append(
                    f"Ulysses degree limited to {eff} by {setup.model.n_heads} heads"
                )
        if not setup.fsdp:
            bd.notes.append("no FSDP: replicated parameters and optimizer states")
        if bd.oom:
            bd.notes.append(
                f"OOM: {bd.total_gb:.1f} GB > {setup.gpu_memory_bytes / GB:.0f} GB"
            )
        return bd


def logits_memory_bytes(seq_len: int, vocab: int, bytes_per_elem: int = BYTES_BF16) -> float:
    """Fig. 8's quantity: total memory of the LM head's logits."""
    return float(seq_len) * vocab * bytes_per_elem


#: The numpy engine's activations are float64.
BYTES_F64 = 8


def swiglu_dense_saved_bytes(
    seq_len: int, dim: int, hidden: int, bytes_per_elem: int = BYTES_F64
) -> int:
    """Bytes the composed SwiGLU graph saves for backward.

    The five-node graph registers: ``x`` twice (both projection matmuls),
    the three weights once each, and five ``(S, hidden)`` intermediates —
    ``g`` and its sigmoid (SiLU), the silu product and ``u`` (Mul), and
    ``h`` (down matmul).  Pinned bit-for-bit against the live
    :class:`~repro.nn.memory.MemoryTracker` by
    ``tests/test_blockwise_mlp.py``.
    """
    return (
        2 * seq_len * dim + 3 * dim * hidden + 5 * seq_len * hidden
    ) * bytes_per_elem


def swiglu_fused_saved_bytes(
    seq_len: int, dim: int, hidden: int, bytes_per_elem: int = BYTES_F64
) -> int:
    """Bytes the fused blockwise FFN node saves: only ``x`` + weights.

    Independent of ``mlp_chunk_size`` — chunking bounds the *transient*
    backward working set (:func:`swiglu_chunked_transient_bytes`), while
    fusion alone removes every ``(S, hidden)`` intermediate from the
    persistent set.
    """
    return (seq_len * dim + 3 * dim * hidden) * bytes_per_elem


def swiglu_chunked_transient_bytes(
    seq_len: int,
    dim: int,
    hidden: int,
    chunk_size: int | None,
    bytes_per_elem: int = BYTES_F64,
) -> int:
    """Transient working-set model of the fused FFN backward.

    The chunked backward rebuilds three full ``(S, hidden)`` buffers
    (``h``/``dg``/``du`` — kept full-size so the weight-gradient GEMMs
    accumulate in the dense path's exact order) plus roughly eight
    chunk-height ``(chunk, hidden)`` intermediates live per chunk step
    (``g``, ``sig``, ``act``, ``u``, ``dh``, ``dact``, ``dg_c``,
    ``du_c``).  With ``chunk_size=None`` the dense backward materialises
    those eight at full height instead.
    """
    chunk = seq_len if chunk_size is None else min(chunk_size, seq_len)
    return (3 * seq_len * hidden + 8 * chunk * hidden) * bytes_per_elem


def checkpoint_memory_curve(
    model: ModelSpec, seq_lens: list[int], world: int, policy: str,
    split_fraction: float = 0.5,
) -> list[float]:
    """Fig. 7's quantity: stored-activation GB vs sequence length."""
    mm = MemoryModel()
    out = []
    for s in seq_lens:
        setup = TrainingSetup(
            model=model, seq_len=s, world=world, checkpoint=policy,
            split_fraction=split_fraction,
        )
        out.append(mm.activation_bytes(setup) / GB)
    return out


# --- byte-exact closed forms for the live numpy engine -----------------------
#
# The analytic model above speaks in bf16 bytes and the paper's ~17x
# activation factor; the functions below instead predict — to the byte —
# what the live float64 engine's MemoryTracker registers for a whole
# training step, generalising the PR-8 SwiGLU pins to every component.
# ``python -m repro.obs memdiff`` holds the tracker to these numbers.


def rms_norm_saved_elems(seq_len: int, dim: int) -> int:
    """Elements one RMSNorm forward saves: ``Mul(x,x)`` (2SD), ``Pow``
    of the variance row (S), ``Mul(x, inv)`` (SD + S) and the weight
    scale ``Mul(., w)`` (SD + D)."""
    return 4 * seq_len * dim + 2 * seq_len + dim


def attention_proj_saved_elems(
    seq_len: int, dim: int, kv_dim: int | None = None
) -> int:
    """Elements the four attention projections save: each ``MatMul``
    keeps its input (S, D) plus the (transposed-view) weight matrix."""
    kv = dim if kv_dim is None else kv_dim
    return 2 * (seq_len * dim + dim * dim) + 2 * (seq_len * dim + dim * kv)


def attention_node_saved_elems(
    seq_len: int, dim: int, n_heads: int, kv_dim: int | None = None
) -> int:
    """Elements the distributed-attention node saves for its backward:
    ``(q, k, v, o, lse)`` in head layout."""
    kv = dim if kv_dim is None else kv_dim
    return 2 * seq_len * dim + 2 * seq_len * kv + n_heads * seq_len


def attention_context_elems(
    seq_len: int, dim: int, n_heads: int, kv_dim: int | None = None
) -> int:
    """Extra context bytes held by methods that cannot rebuild their
    forward context in backward (Ulysses/USP keep the per-rank head-layout
    shards ``q_h``/``k_h``/``v_h``/``o_h``/``lse_h``)."""
    kv = dim if kv_dim is None else kv_dim
    return 2 * seq_len * dim + 2 * seq_len * kv + n_heads * seq_len


def attention_cache_elems(
    seq_len: int,
    dim: int,
    n_heads: int,
    checkpoint: str,
    split_fraction: float = 0.5,
) -> int:
    """Elements the attention-output whitelist cache pins per layer:
    ``(o, lse)`` rows for the cached suffix (all of them for
    selective++, none for ``none``/``full``)."""
    if checkpoint == "selective_pp":
        rows = seq_len
    elif checkpoint == "sequence_level":
        rows = seq_len - int(round(seq_len * split_fraction))
    else:
        rows = 0
    return rows * (dim + n_heads)


def transformer_layer_saved_elems(
    seq_len: int,
    dim: int,
    n_heads: int,
    ffn_hidden: int,
    *,
    kv_dim: int | None = None,
    fused_mlp: bool = False,
    rebuilds_context: bool = True,
) -> int:
    """Elements one un-checkpointed transformer block saves end to end:
    two norms, the four projections, the attention node (plus kept
    context for non-rebuilding methods), and the FFN (composed or fused
    per the PR-8 pins)."""
    ffn = (
        swiglu_fused_saved_bytes(seq_len, dim, ffn_hidden, bytes_per_elem=1)
        if fused_mlp
        else swiglu_dense_saved_bytes(seq_len, dim, ffn_hidden, bytes_per_elem=1)
    )
    ctx = (
        0
        if rebuilds_context
        else attention_context_elems(seq_len, dim, n_heads, kv_dim)
    )
    return (
        2 * rms_norm_saved_elems(seq_len, dim)
        + attention_proj_saved_elems(seq_len, dim, kv_dim)
        + attention_node_saved_elems(seq_len, dim, n_heads, kv_dim)
        + ctx
        + ffn
    )


def lm_head_saved_bytes_live(
    seq_len: int, dim: int, vocab: int, head_impl: str = "fused"
) -> int:
    """Bytes the LM-head loss node registers: the saved ``(dH, dW)``
    gradients plus the implementation's resident footprint (full logits
    for naive, lse rows for tiled-recompute, nothing for fused — the
    Fig. 8 effect, measured)."""
    saved = (seq_len * dim + vocab * dim) * BYTES_F64
    resident = {
        "naive": seq_len * vocab * BYTES_F64,
        "tiled-recompute": seq_len * BYTES_F64,
        "fused": 0,
    }
    try:
        return saved + resident[head_impl]
    except KeyError:
        raise ValueError(f"unknown head impl {head_impl!r}")


def predict_step_peak_saved_bytes(
    *,
    seq_len: int,
    dim: int,
    n_layers: int,
    n_heads: int,
    ffn_hidden: int,
    vocab: int,
    checkpoint: str = "sequence_level",
    split_fraction: float = 0.5,
    head_impl: str = "fused",
    kv_dim: int | None = None,
    fused_mlp: bool = False,
    rebuilds_context: bool = True,
) -> dict:
    """Byte-exact peak of ``MemoryTracker.peak_saved_bytes`` over one step.

    Without checkpointing the peak lands at the end of the forward: every
    layer's full body plus the final norm and the head.  With any
    checkpointing policy the forward keeps only layer inputs (+ the
    whitelist cache), and the peak is usually hit mid-backward while the
    *last* layer replays its full body on top of all the other layers'
    still-live inputs and caches; the prediction takes the max of both
    candidates.  Methods that cannot rebuild context (Ulysses) neither
    cache attention outputs nor drop their forward context, which the
    flags mirror.
    """
    full_layer = transformer_layer_saved_elems(
        seq_len, dim, n_heads, ffn_hidden,
        kv_dim=kv_dim, fused_mlp=fused_mlp,
        rebuilds_context=rebuilds_context,
    )
    cache = (
        attention_cache_elems(
            seq_len, dim, n_heads, checkpoint, split_fraction
        )
        if rebuilds_context
        else 0  # no context rebuild -> the whitelist cache never engages
    )
    norm = rms_norm_saved_elems(seq_len, dim)
    head = lm_head_saved_bytes_live(seq_len, dim, vocab, head_impl)
    if checkpoint == "none":
        forward_peak = n_layers * full_layer * BYTES_F64 + norm * BYTES_F64 + head
        backward_peak = forward_peak
    else:
        forward_peak = (
            n_layers * (seq_len * dim + cache) + norm
        ) * BYTES_F64 + head
        # Deepest replay: layer L-1 re-registers its full body while all
        # L inputs and the other L-1 layers' caches are still live.
        backward_peak = (
            n_layers * seq_len * dim + (n_layers - 1) * cache + full_layer
        ) * BYTES_F64
    return {
        "peak_saved_bytes": max(forward_peak, backward_peak),
        "forward_peak_bytes": forward_peak,
        "backward_peak_bytes": backward_peak,
        "per_layer_saved_bytes": full_layer * BYTES_F64,
        "cache_bytes_per_layer": cache * BYTES_F64,
        "lm_head_bytes": head,
        "checkpoint": checkpoint,
    }


def predict_checkpoint_policy_curve(
    *,
    seq_len: int,
    dim: int,
    n_layers: int,
    n_heads: int,
    ffn_hidden: int,
    vocab: int,
    split_fraction: float = 0.5,
    head_impl: str = "fused",
    policies: tuple = ("none", "full", "selective_pp", "sequence_level"),
    **kwargs,
) -> dict:
    """The Fig. 7 curve for the live engine: policy -> predicted step
    peak, byte-exact (``memdiff`` checks the measured curve against it)."""
    return {
        policy: predict_step_peak_saved_bytes(
            seq_len=seq_len, dim=dim, n_layers=n_layers, n_heads=n_heads,
            ffn_hidden=ffn_hidden, vocab=vocab, checkpoint=policy,
            split_fraction=split_fraction, head_impl=head_impl, **kwargs,
        )["peak_saved_bytes"]
        for policy in policies
    }
