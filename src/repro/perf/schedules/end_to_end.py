"""End-to-end training-step model: TGS, MFU, peak memory per method.

One training step is composed per layer out of

* dense-GEMM compute (QKV/O projections, SwiGLU FFN) at calibrated GEMM
  efficiency,
* the distributed attention pass time from the DES schedules
  (:mod:`repro.perf.schedules.attention`),
* checkpoint recomputation (the policy decides how much of the layer,
  and in particular of attention, is re-run),
* FSDP parameter all-gathers / gradient reduce-scatter, overlapped with
  compute at Transformer-block granularity (the BMTrain behaviour the
  paper describes) — per layer the effective time is
  ``max(compute, fsdp_comm)``; Megatron-CP has no FSDP traffic but
  replicates states (its cost shows up in the memory model instead),
* the LM head + loss (fused / tiled / naive FLOPs), and
* the optimizer step (PCIe-bound when offloaded).

The paper's end-to-end observation — "extra communication caused by FSDP
makes perfect overlap impossible, so reducing attention communication cost
yields bigger end-to-end gains than attention-only benchmarks suggest" —
emerges here: the per-layer ``max(compute, fsdp)`` leaves less slack to
hide attention communication, so Burst's lower backward volume buys more
than Fig. 14 alone implies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.models import ModelSpec
from repro.perf.cost import link_time, matmul_time
from repro.perf.memory import MemoryBreakdown, MemoryModel, TrainingSetup
from repro.perf.schedules.attention import AttentionWorkload, attention_pass_time
from repro.topology import ClusterTopology, LinkClass


GEMM_EFFICIENCY = 0.65
#: Backward of a linear layer: grad-input + grad-weight GEMMs.
LINEAR_BWD_FACTOR = 2.0
PCIE_BANDWIDTH = 16e9  # bytes/s, host <-> device for optimizer offload
BYTES_BF16 = 2


@dataclass
class EndToEndResult:
    """Simulated step outcome for one evaluation cell."""

    method: str
    step_time: float
    tgs: float
    mfu: float
    memory: MemoryBreakdown
    breakdown: dict[str, float]

    @property
    def oom(self) -> bool:
        return self.memory.oom


@dataclass
class EndToEndModel:
    """Step-time composer for a (model, cluster, method, policy) cell."""

    model: ModelSpec
    topology: ClusterTopology
    method: str = "burst"
    checkpoint: str = "sequence_level"
    split_fraction: float = 0.5
    head_mode: str = "fused"
    fsdp: bool = True
    optimizer_offload: bool = False
    sparsity: float = 1.0
    causal: bool = True
    workload_balanced: bool = True
    ulysses_degree: int | None = None

    # --- per-piece times -------------------------------------------------------

    def _linear_flops_fwd(self, s_local: float) -> float:
        m = self.model
        per_token = 2.0 * (4 * m.hidden * m.hidden + 3 * m.hidden * m.ffn)
        return per_token * s_local

    def _attention_workload(self, seq_len: int) -> AttentionWorkload:
        sparsity = self.sparsity
        if not self.workload_balanced:
            # Without zigzag/striped balance the slowest device computes as
            # if the mask were dense: barriers erase the sparsity saving.
            sparsity = 2.0 if self.causal else 1.0  # causal: full pairs
            return AttentionWorkload(
                seq_len=seq_len, hidden=self.model.hidden,
                n_heads=self.model.n_heads, causal=self.causal,
                sparsity=sparsity, kv_ratio=self.model.kv_ratio,
            )
        return AttentionWorkload(
            seq_len=seq_len, hidden=self.model.hidden,
            n_heads=self.model.n_heads, causal=self.causal, sparsity=sparsity,
            kv_ratio=self.model.kv_ratio,
        )

    def _attention_times(self, seq_len: int) -> tuple[float, float]:
        wl = self._attention_workload(seq_len)
        kw = dict(ulysses_degree=self.ulysses_degree) if self.method == "usp" else {}
        fwd = attention_pass_time(self.method, self.topology, wl, backward=False, **kw)
        bwd = attention_pass_time(self.method, self.topology, wl, backward=True, **kw)
        return fwd, bwd

    def _fsdp_layer_time(self, passes: int = 1) -> float:
        """Ring all-gather of one layer's parameter shard."""
        if not self.fsdp or self.topology.world_size == 1:
            return 0.0
        m = self.model
        layer_params = 4 * m.hidden * m.hidden + 3 * m.hidden * m.ffn
        layer_bytes = layer_params * BYTES_BF16
        g = self.topology.world_size
        cls = LinkClass.INTER if self.topology.num_nodes > 1 else LinkClass.INTRA
        per_gather = (g - 1) * link_time(self.topology, layer_bytes / g, cls)
        return passes * per_gather

    def _head_time(self, s_local: float) -> float:
        m = self.model
        gemms = {"fused": 3, "naive": 3, "tiled": 4}[self.head_mode]
        flops = gemms * 2.0 * s_local * m.vocab * m.hidden
        return matmul_time(flops, self.topology.node.gpu.peak_flops, GEMM_EFFICIENCY)

    def _optimizer_time(self) -> float:
        shard = self.topology.world_size if self.fsdp else 1
        state_bytes = self.model.n_params * 12 / shard
        if self.optimizer_offload:
            # grads down + params up over PCIe
            return 2 * self.model.n_params * BYTES_BF16 / shard / PCIE_BANDWIDTH
        return state_bytes / self.topology.node.gpu.memory_bandwidth

    # --- composition ---------------------------------------------------------

    def step(self, seq_len: int) -> EndToEndResult:
        g = self.topology.world_size
        peak = self.topology.node.gpu.peak_flops
        s_local = seq_len / g
        m = self.model

        lin_fwd = matmul_time(self._linear_flops_fwd(s_local), peak, GEMM_EFFICIENCY)
        lin_bwd = LINEAR_BWD_FACTOR * lin_fwd
        attn_fwd, attn_bwd = self._attention_times(seq_len)

        # Recomputation per policy.
        if self.checkpoint == "none":
            recompute = 0.0
            fsdp_passes = 2  # params gathered fwd + bwd
        elif self.checkpoint == "full":
            recompute = lin_fwd + attn_fwd
            fsdp_passes = 3  # fwd + recompute + bwd gather passes
        elif self.checkpoint == "selective_pp":
            recompute = lin_fwd
            fsdp_passes = 3
        elif self.checkpoint == "sequence_level":
            c = self.split_fraction
            recompute = lin_fwd + c * c * attn_fwd
            fsdp_passes = 3
        else:
            raise ValueError(f"unknown checkpoint {self.checkpoint!r}")

        layer_compute = lin_fwd + attn_fwd + lin_bwd + attn_bwd + recompute
        fsdp_time = self._fsdp_layer_time(fsdp_passes)
        # Block-level overlap (BMTrain): FSDP hides under compute, or the
        # reverse, per layer.
        layer_time = max(layer_compute, fsdp_time)

        head = self._head_time(s_local)
        opt = self._optimizer_time()
        step_time = m.n_layers * layer_time + head + opt

        tokens_per_gpu = s_local
        tgs = tokens_per_gpu / step_time
        mfu = (
            m.flops_per_token(seq_len, causal=self.causal) * seq_len
            / (step_time * g * peak)
        )

        mm = MemoryModel()
        setup = TrainingSetup(
            model=m, seq_len=seq_len, world=g, method=self.method,
            fsdp=self.fsdp, optimizer_offload=self.optimizer_offload,
            checkpoint=self.checkpoint, split_fraction=self.split_fraction,
            head_mode=self.head_mode,
            gpu_memory_bytes=self.topology.node.gpu.memory_bytes,
        )
        memory = mm.breakdown(setup)

        return EndToEndResult(
            method=self.method,
            step_time=step_time,
            tgs=tgs,
            mfu=mfu,
            memory=memory,
            breakdown={
                "linear_fwd": m.n_layers * lin_fwd,
                "linear_bwd": m.n_layers * lin_bwd,
                "attention_fwd": m.n_layers * attn_fwd,
                "attention_bwd": m.n_layers * attn_bwd,
                "recompute": m.n_layers * recompute,
                "fsdp_exposed": m.n_layers * max(0.0, fsdp_time - layer_compute),
                "lm_head": head,
                "optimizer": opt,
            },
        )


def end_to_end_step(
    model: ModelSpec,
    topology: ClusterTopology,
    seq_len: int,
    method: str = "burst",
    **kwargs,
) -> EndToEndResult:
    """Convenience one-call wrapper around :class:`EndToEndModel`."""
    return EndToEndModel(
        model=model, topology=topology, method=method, **kwargs
    ).step(seq_len)
