"""DES task-graph builders for attention passes and end-to-end steps."""

from repro.perf.schedules.attention import (
    ATTENTION_SCHEDULES,
    AttentionWorkload,
    attention_pass_time,
    degraded_attention_pass_time,
)
from repro.perf.schedules.end_to_end import (
    EndToEndModel,
    EndToEndResult,
    end_to_end_step,
)

__all__ = [
    "ATTENTION_SCHEDULES",
    "AttentionWorkload",
    "attention_pass_time",
    "degraded_attention_pass_time",
    "EndToEndModel",
    "EndToEndResult",
    "end_to_end_step",
]
