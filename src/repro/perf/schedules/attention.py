"""DES task graphs for one distributed attention pass (fwd or bwd).

Each method's overlap structure (Fig. 5 of the paper) is encoded as a task
graph over one representative GPU's three resources — ``compute``, its
NVLink channel ``intra``, and its NIC ``inter``:

* **flat ring** (Megatron-CP): the ring advances in lockstep, so every
  transition costs the *slowest* hop (inter-node once the cluster spans
  nodes).  KV circulation overlaps compute ("activation" pattern);
  gradient circulation uses the delayed double buffer.
* **double ring** (LoongTrain): intra and inter rings run on their own
  links and overlap each other and compute in the forward / KV phases, but
  LoongTrain does **not** overlap the gradient buffers — they drain
  serially after compute (the ``+2(I*T_intra + E*T_inter)`` of Table 1).
* **burst**: like double ring, plus the warm-up-delayed double buffer that
  pipelines gradient communication against compute (Fig. 5 bottom), and
  Algorithm 2's smaller backward payload.
* **ulysses**: two all-to-alls bracketing local compute; the collectives
  cannot overlap the attention they feed ("can not overlap all-to-all
  communication with computation").
* **usp**: Ulysses inside each node (intra-link all-to-all) + a flat ring
  of Algorithm 1 over the node-striding ring groups.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.comm import double_ring_schedule
from repro.perf.cost import flat_ring_step_time, link_time, matmul_time
from repro.perf.des import Simulator
from repro.topology import ClusterTopology, LinkClass


#: Attention-kernel efficiency relative to peak (softmax + masking overhead
#: keep flash kernels below pure-GEMM efficiency on Ampere).
ATTENTION_EFFICIENCY = 0.58

#: Backward attention re-forms the score tiles and runs 4 gradient matmuls:
#: ~2.5x the forward matmul volume.
BACKWARD_FLOPS_FACTOR = 2.5


@dataclass(frozen=True)
class AttentionWorkload:
    """One attention layer's distributed workload.

    ``seq_len`` is the *global* sequence length; ``hidden`` the model dim
    (= heads x head_dim); ``causal`` halves the pair count.
    """

    seq_len: int
    hidden: int
    n_heads: int
    causal: bool = True
    bytes_per_elem: int = 2
    sparsity: float = 1.0  # fraction of causal pairs kept (SWA etc.)
    kv_ratio: float = 1.0  # GQA: KV width relative to query width

    def total_pairs(self) -> float:
        pairs = float(self.seq_len) * self.seq_len
        if self.causal:
            pairs /= 2
        return pairs * self.sparsity

    def fwd_flops_per_gpu(self, world: int) -> float:
        return 4.0 * self.total_pairs() * self.hidden / world

    def shard_bytes(self, world: int) -> float:
        """One query-width shard-sized buffer in bytes."""
        return self.seq_len / world * self.hidden * self.bytes_per_elem

    def kv_shard_bytes(self, world: int) -> float:
        """One KV-width shard (narrower than query width under GQA)."""
        return self.shard_bytes(world) * self.kv_ratio


def _pipelined_ring(
    sim: Simulator,
    prefix: str,
    transitions: list[tuple[str, float]],
    step_compute: float,
    grad_dependent: bool,
) -> str:
    """Ring circulation with double-buffered pipelining.

    ``transitions`` is a list of ``(resource, duration)`` per transition.

    * ``grad_dependent=False`` — activation pattern (Fig. 5 top): the
      circulating data needs no compute, so communication chains only on
      itself and compute step ``t`` waits for delivery ``t-1``.
    * ``grad_dependent=True`` — the delayed double-buffer pattern (Fig. 5
      bottom): one warm-up compute round, after which sub-chunked double
      buffering lets each transfer overlap the next compute round; the
      whole circulation is gated only by the warm-up and the two resource
      chains (compute and links) running concurrently.

    Returns the name of the last task.
    """
    steps = len(transitions) + 1
    last = ""
    comm_prev: dict[str, str] = {}
    compute_prev = ""
    delivered: str | None = None
    for t in range(steps):
        deps = []
        if compute_prev:
            deps.append(compute_prev)
        if not grad_dependent and delivered is not None:
            deps.append(delivered)
        cname = f"{prefix}c{t}"
        sim.add(cname, step_compute, resources=("compute",), deps=deps)
        compute_prev = cname
        last = cname
        if t < len(transitions):
            res, dur = transitions[t]
            deps_m = []
            if res in comm_prev:
                deps_m.append(comm_prev[res])
            if grad_dependent:
                # every transfer waits for the warm-up round only;
                # sub-chunk double buffering hides the per-slot coupling
                deps_m.append(f"{prefix}c0")
            mname = f"{prefix}m{t}"
            sim.add(mname, dur, resources=(res,), deps=deps_m)
            comm_prev[res] = mname
            delivered = mname
            if t == len(transitions) - 1:
                last = mname
    return last


def _bidirectional_ring(
    sim: Simulator,
    prefix: str,
    steps: int,
    fwd_transitions: list[tuple[str, float]],
    rev_transitions: list[tuple[str, float]],
    step_compute: float,
    grad_dependent: bool,
) -> str:
    """Ring circulation split across two counter-rotating streams.

    The forward stream keeps the ``intra`` / ``inter`` link resources; the
    reverse stream runs concurrently on the opposite-direction channels
    (``intra-rev`` / ``inter-rev`` — full-duplex links).  Compute step ``t``
    is fed by forward delivery ``t - 1`` while ``t`` is in the forward
    stream's half and by reverse move ``steps - t`` afterwards, so the
    comm-bound critical path is ``max`` of the two chains rather than their
    sum.  ``grad_dependent`` keeps the delayed double-buffer semantics of
    :func:`_pipelined_ring` (transfers wait only on the warm-up round).
    """
    rev_serves_from = steps - len(rev_transitions)
    compute_prev = ""
    comm_prev: dict[str, str] = {}
    fwd_names: list[str] = []
    rev_names: list[str] = []
    last = ""
    for t in range(steps):
        deps = []
        if compute_prev:
            deps.append(compute_prev)
        if not grad_dependent and t >= 1:
            if t < rev_serves_from:
                if t - 1 < len(fwd_names):
                    deps.append(fwd_names[t - 1])
            else:
                deps.append(rev_names[steps - t - 1])
        cname = f"{prefix}c{t}"
        sim.add(cname, step_compute, resources=("compute",), deps=deps)
        compute_prev = cname
        last = cname
        if t < len(fwd_transitions):
            res, dur = fwd_transitions[t]
            deps_m = [comm_prev[res]] if res in comm_prev else []
            if grad_dependent:
                deps_m.append(f"{prefix}c0")
            mname = f"{prefix}mf{t}"
            sim.add(mname, dur, resources=(res,), deps=deps_m)
            comm_prev[res] = mname
            fwd_names.append(mname)
        if t < len(rev_transitions):
            res, dur = rev_transitions[t]
            rres = f"{res}-rev"
            deps_r = [comm_prev[rres]] if rres in comm_prev else []
            rname = f"{prefix}mr{t}"
            sim.add(rname, dur, resources=(rres,), deps=deps_r)
            comm_prev[rres] = rname
            rev_names.append(rname)
    return last


def _rev_transition_list(
    transitions: list[tuple[str, float]], rev_moves: int
) -> list[tuple[str, float]]:
    """Per-move ``(resource, duration)`` of the reverse stream.

    Move ``s >= 2`` retraces forward transition ``S - s`` backwards, so it
    reuses that transition's link class; the seeding exchange (``s = 1``)
    is priced like the return-to-owner hop it replaces (the last
    transition's link).
    """
    if rev_moves == 0:
        return []
    num_steps = len(transitions) + 1
    out = [transitions[-1]]
    for s in range(2, rev_moves + 1):
        out.append(transitions[num_steps - s])
    return out


def _transition_durations(
    topology: ClusterTopology, payload: float, flat: bool,
    window: int | None = None,
) -> list[tuple[str, float]]:
    """Per-transition ``(resource, duration)`` for a full circulation."""
    g = topology.world_size
    if flat:
        dur = flat_ring_step_time(topology, payload)
        res = "inter" if topology.num_nodes > 1 else "intra"
        return [(res, dur)] * (g - 1)
    out = []
    sched = double_ring_schedule(topology, window=window)
    for t in range(len(sched.transitions)):
        cls = sched.transition_link_class(t)
        res = "intra" if cls is LinkClass.INTRA else "inter"
        out.append((res, link_time(topology, payload, cls)))
    return out


def _flat_or_double_pass(
    topology: ClusterTopology,
    wl: AttentionWorkload,
    peak_flops: float,
    *,
    flat: bool,
    backward: bool,
    serialize_gradients: bool,
    alg2_payload: bool,
    ring_window: int | None = None,
    ring_mode: str = "unidirectional",
) -> float:
    g = topology.world_size
    flops = wl.fwd_flops_per_gpu(g)
    if backward:
        flops *= BACKWARD_FLOPS_FACTOR
    step_compute = matmul_time(flops / g, peak_flops, ATTENTION_EFFICIENCY)
    shard = wl.shard_bytes(g)
    kv_shard = wl.kv_shard_bytes(g)

    if ring_mode == "bidirectional":
        return _bidirectional_pass(
            topology, step_compute, shard, kv_shard, wl.hidden,
            flat=flat, backward=backward, alg2_payload=alg2_payload,
            ring_window=ring_window,
        )

    sim = Simulator()
    if not backward:
        payload = 2 * kv_shard  # K + V
        transitions = _transition_durations(topology, payload, flat, ring_window)
        _pipelined_ring(sim, "f", transitions, step_compute, grad_dependent=False)
        return sim.run()

    if alg2_payload:
        payload = shard * (3 + 2 / wl.hidden)  # Q + dQ + dO + (D, Lse)
        transitions = _transition_durations(topology, payload, flat, ring_window)
        # Gradient circulation with the delayed double buffer (warm-up
        # round, then steady-state compute/comm overlap).
        _pipelined_ring(sim, "b", transitions, step_compute, True)
        makespan = sim.run()
        if transitions:
            makespan += transitions[-1][1]  # return-to-owner hop
        return makespan

    # Algorithm 1: KV part (2 shards) circulates like activations; the
    # gradient part (2 shards) either pipelines (flat ring / Megatron)
    # or drains serially after compute (LoongTrain's DoubleRing).
    kv_payload = 2 * kv_shard
    gr_payload = 2 * kv_shard
    kv_transitions = _transition_durations(topology, kv_payload, flat, ring_window)
    gr_transitions = _transition_durations(topology, gr_payload, flat, ring_window)
    if serialize_gradients:
        _pipelined_ring(sim, "b", kv_transitions, step_compute, False)
        makespan = sim.run()
        drain = sum(d for _, d in gr_transitions)
        if gr_transitions:
            drain += gr_transitions[-1][1]  # return hop
        return makespan + drain
    # combined payload pipelined with gradient dependency
    both = [(res, d_kv + d_gr) for (res, d_kv), (_, d_gr) in
            zip(kv_transitions, gr_transitions)]
    _pipelined_ring(sim, "b", both, step_compute, True)
    makespan = sim.run()
    if both:
        makespan += both[-1][1]
    return makespan


def _bidirectional_pass(
    topology: ClusterTopology,
    step_compute: float,
    shard: float,
    kv_shard: float,
    hidden: int,
    *,
    flat: bool,
    backward: bool,
    alg2_payload: bool,
    ring_window: int | None = None,
) -> float:
    """Wall-clock of one bidirectional-ring pass.

    Read-only bundle parts split across the two streams (``T_f = S // 2``
    forward transitions, ``R = (S - 1) // 2`` reverse moves); in the
    backward passes the gradient accumulators keep riding all ``S - 1``
    forward transitions plus a shrunken return hop, delayed-double-buffered
    against compute.
    """
    from repro.perf.cost import bidirectional_step_split

    g = topology.world_size
    num_steps = g
    t_f, rev = bidirectional_step_split(num_steps)

    def durations(payload: float) -> list[tuple[str, float]]:
        return _transition_durations(topology, payload, flat, ring_window)

    sim = Simulator()
    if not backward:
        kv = durations(2 * kv_shard)
        _bidirectional_ring(
            sim, "f", num_steps, kv[:t_f], _rev_transition_list(kv, rev),
            step_compute, grad_dependent=False,
        )
        return sim.run()

    if alg2_payload:
        full = durations(shard * (3 + 2 / hidden))  # Q + dQ + dO + (D, Lse)
        dq = durations(shard)                       # accumulator alone
        ro = durations(shard * (2 + 2 / hidden))    # Q + dO + (D, Lse)
        fwd_chain = full[:t_f] + dq[t_f:]
        _bidirectional_ring(
            sim, "b", num_steps, fwd_chain, _rev_transition_list(ro, rev),
            step_compute, grad_dependent=True,
        )
        makespan = sim.run()
        if dq:
            makespan += dq[-1][1]  # dQ return-to-owner hop
        return makespan

    # Algorithm 1: (K, V) split across streams, (dK, dV) ride forward.
    full = durations(4 * kv_shard)
    grads = durations(2 * kv_shard)
    fwd_chain = full[:t_f] + grads[t_f:]
    _bidirectional_ring(
        sim, "b", num_steps, fwd_chain, _rev_transition_list(grads, rev),
        step_compute, grad_dependent=True,
    )
    makespan = sim.run()
    if grads:
        makespan += grads[-1][1]  # dK/dV return hop
    return makespan


def _all_to_all_time(
    topology: ClusterTopology, shard_bytes: float, group: list[int] | None = None
) -> float:
    """Time for one all-to-all of a shard-sized buffer per rank.

    Each rank sends ``(u-1)/u`` of its shard, split across links by the
    placement of the peers.  Without ``group``, the collective spans the
    world (Ulysses); with a contiguous intra-node group it stays on NVLink.
    """
    g = topology.world_size
    members = group if group is not None else list(range(g))
    u = len(members)
    if u == 1:
        return 0.0
    chunk = shard_bytes / u
    same_node = sum(
        1 for m in members[1:] if topology.node_of(m) == topology.node_of(members[0])
    )
    cross_node = (u - 1) - same_node
    t_intra = link_time(topology, chunk * same_node, LinkClass.INTRA) if same_node else 0.0
    t_inter = link_time(topology, chunk * cross_node, LinkClass.INTER) if cross_node else 0.0
    # Sends to different peers proceed in parallel over disjoint links.
    return max(t_intra, t_inter)


def _ulysses_pass(
    topology: ClusterTopology,
    wl: AttentionWorkload,
    peak_flops: float,
    *,
    backward: bool,
) -> float:
    g = topology.world_size
    shard = wl.shard_bytes(g)
    flops = wl.fwd_flops_per_gpu(g)
    n_in = 1 if backward else 3      # dO in; q,k,v in
    n_out = 3 if backward else 1     # dq,dk,dv out; o out
    if backward:
        flops *= BACKWARD_FLOPS_FACTOR
    compute = matmul_time(flops, peak_flops, ATTENTION_EFFICIENCY)
    a2a_in = _all_to_all_time(topology, n_in * shard)
    a2a_out = _all_to_all_time(topology, n_out * shard)
    # Strictly serial: collective -> compute -> collective.
    return a2a_in + compute + a2a_out


def _usp_pass(
    topology: ClusterTopology,
    wl: AttentionWorkload,
    peak_flops: float,
    *,
    backward: bool,
    ulysses_degree: int | None = None,
) -> float:
    g = topology.world_size
    u = ulysses_degree or min(topology.gpus_per_node, wl.n_heads)
    while wl.n_heads % u != 0 and u > 1:
        u -= 1
    r = g // u
    shard = wl.shard_bytes(g)
    flops = wl.fwd_flops_per_gpu(g)
    if backward:
        flops *= BACKWARD_FLOPS_FACTOR
    step_compute = matmul_time(flops / r, peak_flops, ATTENTION_EFFICIENCY)

    # Head-first placement: the Ulysses group is contiguous (intra-node
    # when u <= gpus_per_node).
    group = list(range(u))
    n_in = 1 if backward else 3
    n_out = 3 if backward else 1
    a2a = _all_to_all_time(topology, n_in * shard, group) + _all_to_all_time(
        topology, n_out * shard, group
    )

    # Ring over r positions; each hop strides u ranks (inter-node once the
    # ring leaves the node).  Ring payload: the rank now holds N/r tokens
    # of H/u heads => same bytes as `shard * ...` per circulating buffer.
    ring_buf = wl.seq_len / r * (wl.hidden / u) * wl.bytes_per_elem
    hop_inter = topology.num_nodes > 1 and u >= topology.gpus_per_node
    cls = LinkClass.INTER if hop_inter else LinkClass.INTRA
    res = "inter" if hop_inter else "intra"
    if backward:
        # Algorithm 1 over the short ring: KV circulation overlaps, the
        # gradient buffers drain serially (LoongTrain's limitation).
        kv = [(res, link_time(topology, 2 * ring_buf, cls))] * (r - 1)
        sim = Simulator()
        _pipelined_ring(sim, "u", kv, step_compute, grad_dependent=False)
        ring_time = sim.run()
        grad_hop = link_time(topology, 2 * ring_buf, cls)
        ring_time += r * grad_hop if r > 1 else 0.0
    else:
        payload = 2 * ring_buf
        transitions = [(res, link_time(topology, payload, cls))] * (r - 1)
        sim = Simulator()
        _pipelined_ring(sim, "u", transitions, step_compute, grad_dependent=False)
        ring_time = sim.run()
    return a2a + ring_time


def attention_pass_time(
    method: str,
    topology: ClusterTopology,
    workload: AttentionWorkload,
    *,
    backward: bool = False,
    peak_flops: float | None = None,
    ulysses_degree: int | None = None,
    ring_window: int | None = None,
    ring_mode: str = "unidirectional",
) -> float:
    """Simulated wall-clock seconds for one distributed attention pass."""
    peak = peak_flops if peak_flops is not None else topology.node.gpu.peak_flops
    if method == "megatron-cp":
        # Flat lockstep ring; like every Algorithm-1 implementation it
        # overlaps the KV circulation but not the gradient buffers.
        return _flat_or_double_pass(
            topology, workload, peak, flat=True, backward=backward,
            serialize_gradients=True, alg2_payload=False,
            ring_mode=ring_mode,
        )
    if method == "loongtrain-double":
        return _flat_or_double_pass(
            topology, workload, peak, flat=False, backward=backward,
            serialize_gradients=True, alg2_payload=False,
            ring_mode=ring_mode,
        )
    if method == "burst":
        return _flat_or_double_pass(
            topology, workload, peak, flat=False, backward=backward,
            serialize_gradients=False, alg2_payload=True,
            ring_window=ring_window, ring_mode=ring_mode,
        )
    if method == "burst-flat":  # ablation: Alg. 2 without topology-aware ring
        return _flat_or_double_pass(
            topology, workload, peak, flat=True, backward=backward,
            serialize_gradients=False, alg2_payload=True,
        )
    if method == "double-alg1-overlap":  # ablation: topo ring, Alg. 1, overlapped
        return _flat_or_double_pass(
            topology, workload, peak, flat=False, backward=backward,
            serialize_gradients=False, alg2_payload=False,
        )
    if method == "burst-adaptive":
        # GQA extension: circulate whichever backward bundle is smaller
        # (query-sized Alg. 2 vs KV-sized Alg. 1, both delayed-overlapped).
        alg2_units = 3 + 2 / workload.hidden
        alg1_units = 4 * workload.kv_ratio
        return _flat_or_double_pass(
            topology, workload, peak, flat=False, backward=backward,
            serialize_gradients=False, alg2_payload=(alg2_units <= alg1_units),
            ring_window=ring_window,
        )
    if method == "ulysses":
        return _ulysses_pass(topology, workload, peak, backward=backward)
    if method == "usp":
        return _usp_pass(
            topology, workload, peak, backward=backward,
            ulysses_degree=ulysses_degree,
        )
    raise ValueError(f"unknown attention schedule {method!r}")


def degraded_attention_pass_time(
    method: str,
    topology: ClusterTopology,
    workload: AttentionWorkload,
    failed: int = 1,
    *,
    backward: bool = False,
    peak_flops: float | None = None,
    ulysses_degree: int | None = None,
    ring_window: int | None = None,
    ring_mode: str = "unidirectional",
) -> float:
    """Pass time after elastic recovery dropped ``failed`` ranks.

    Rebuilds the task graph on the survivor topology (via
    :func:`repro.perf.cost.degraded_topology`, the same shrink rule the
    elastic runtime applies), so the slowdown reflects both the larger
    ``S/(G-k)`` shards and the survivors' repacked intra/inter split.
    """
    from repro.perf.cost import degraded_topology

    return attention_pass_time(
        method,
        degraded_topology(topology, failed),
        workload,
        backward=backward,
        peak_flops=peak_flops,
        ulysses_degree=ulysses_degree,
        ring_window=ring_window,
        ring_mode=ring_mode,
    )


ATTENTION_SCHEDULES = (
    "megatron-cp",
    "loongtrain-double",
    "burst",
    "ulysses",
    "usp",
)
