"""Benchmark regression harness (``python -m repro.perf.bench``).

Runs kernel- and attention-method microbenchmarks twice — once with the
legacy dense-mask path (``use_planning(False)``) and once with mask-aware
tile planning — and writes machine-readable results to ``BENCH_kernels.json``
and ``BENCH_attention.json`` at the repo root.  Each record carries the
configuration, wall-clock times, sub-tile skip accounting from
:data:`repro.kernels.tileplan.counters`, the dense-vs-planned speedup, and
the maximum numeric deviation between the two paths (gated at ``1e-12``).

``--check`` compares a fresh run against the committed JSON baselines:

* tile counts must match the baseline exactly (they are deterministic);
* per-case speedup must not regress below ``baseline / tolerance``;
* the causal kernel case must keep skipping >= 40 % of sub-tiles (always)
  and show a wall-clock win (full-size runs only — smoke configs are too
  small for skipped tiles to beat plan overhead).

Exit status is non-zero on any regression, which is what the CI
``perf-smoke`` job gates on.  ``--check`` still rewrites the JSON files so
CI uploads the fresh numbers as artifacts.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.attention.methods import get_method
from repro.comm import SimCommunicator
from repro.topology import make_cluster
from repro.kernels import (
    BiasTileCache,
    KernelWorkspace,
    TilePlan,
    counters,
    flash_attention_backward,
    flash_attention_forward,
    use_planning,
)
from repro.masks import ALiBiMask, CausalMask, sliding_window_block_mask
from repro.masks.patterns import SlidingWindowMask

#: Required causal skip fraction (acceptance criterion).
CAUSAL_SKIP_FLOOR = 0.4

#: Numeric identity gate between dense and planned paths.
MAX_NUMERIC_DIFF = 1e-12


def repo_root() -> Path:
    return Path(__file__).resolve().parents[3]


# --- kernel suite -------------------------------------------------------------


def _kernel_cases(smoke: bool) -> list[dict]:
    s, d, h, blk = (256, 16, 2, 32) if smoke else (768, 32, 4, 64)
    return [
        {"name": "causal", "seq": s, "head_dim": d, "heads": h, "block": blk},
        {"name": "sliding-window", "seq": s, "head_dim": d, "heads": h,
         "block": blk, "window": s // 4},
        {"name": "block-sparse", "seq": s, "head_dim": d, "heads": h,
         "block": blk, "mask_block": s // 8, "window_blocks": 2},
        {"name": "alibi", "seq": s, "head_dim": d, "heads": h, "block": blk},
    ]


def _kernel_mask(case: dict):
    if case["name"] == "causal":
        return CausalMask()
    if case["name"] == "sliding-window":
        return SlidingWindowMask(case["window"])
    if case["name"] == "block-sparse":
        return sliding_window_block_mask(
            case["seq"], case["mask_block"], case["window_blocks"]
        )
    if case["name"] == "alibi":
        return ALiBiMask(case["heads"])
    raise ValueError(case["name"])


def _time_kernel_pass(q, k, v, do, mask, case, *, planned: bool, repeats: int):
    """One fwd+bwd measurement; returns (best_seconds, outputs, counters)."""
    s = case["seq"]
    blk = case["block"]
    idx = np.arange(s)
    best = float("inf")
    outs = None
    snap = None
    for _ in range(repeats):
        counters.reset()
        t0 = time.perf_counter()
        if planned:
            plan = TilePlan.build(
                mask, idx, idx, blk, blk, bias_cache=BiasTileCache()
            )
            ws = KernelWorkspace()
            o, lse = flash_attention_forward(q, k, v, plan=plan, workspace=ws)
            grads = flash_attention_backward(
                q, k, v, o, lse, do, plan=plan, workspace=ws
            )
        else:
            dense = mask.dense(s)
            bias = mask.bias_block(idx, idx)
            o, lse = flash_attention_forward(
                q, k, v, mask=dense, bias=bias, block_q=blk, block_k=blk
            )
            grads = flash_attention_backward(
                q, k, v, o, lse, do, mask=dense, bias=bias,
                block_q=blk, block_k=blk,
            )
        elapsed = time.perf_counter() - t0
        if elapsed < best:
            best = elapsed
            outs = (o, lse, *grads)
            snap = counters.snapshot()
    return best, outs, snap


def run_kernel_suite(smoke: bool, repeats: int) -> list[dict]:
    results = []
    rng = np.random.default_rng(0)
    for case in _kernel_cases(smoke):
        s, d, h = case["seq"], case["head_dim"], case["heads"]
        q, k, v, do = (rng.normal(size=(h, s, d)) for _ in range(4))
        mask = _kernel_mask(case)
        dense_s, dense_out, _ = _time_kernel_pass(
            q, k, v, do, mask, case, planned=False, repeats=repeats
        )
        plan_s, plan_out, snap = _time_kernel_pass(
            q, k, v, do, mask, case, planned=True, repeats=repeats
        )
        max_diff = max(
            float(np.max(np.abs(a - b))) for a, b in zip(dense_out, plan_out)
        )
        results.append({
            "name": case["name"],
            "params": {k_: v_ for k_, v_ in case.items() if k_ != "name"},
            "dense_s": dense_s,
            "planned_s": plan_s,
            "speedup": dense_s / plan_s if plan_s > 0 else float("inf"),
            "tiles_computed": snap["tiles_computed"],
            "tiles_skipped": snap["tiles_skipped"],
            "skip_fraction": snap["skip_fraction"],
            "bias_tiles_built": snap["bias_tiles_built"],
            "bias_tiles_reused": snap["bias_tiles_reused"],
            "max_abs_diff": max_diff,
        })
    return results


# --- attention-method suite ---------------------------------------------------


def _method_cases(smoke: bool) -> list[dict]:
    g = 4
    s, d, h, blk = (128, 8, 4, 16) if smoke else (256, 16, 4, 32)
    names = ["megatron-cp", "burst", "loongtrain-double"]
    if not smoke:
        names.append("usp")
    return [
        {"name": name, "world": g, "seq": s, "head_dim": d, "heads": h,
         "block": blk}
        for name in names
    ]


def _run_method(case: dict, q, k, v, do, mask) -> tuple[float, tuple]:
    kwargs = {"block_size": case["block"]}
    if case["name"] == "usp":
        kwargs["ulysses_degree"] = 2
    method = get_method(case["name"], **kwargs)
    g = case["world"]
    comm = SimCommunicator(make_cluster(g, gpus_per_node=max(2, g // 2)))
    s = case["seq"]
    idxs = method.indices(s, g)
    qs, ks, vs = method.shard(q, g), method.shard(k, g), method.shard(v, g)
    t0 = time.perf_counter()
    os_, lses, ctx = method.forward_shards(comm, qs, ks, vs, idxs, mask, None)
    dos = method.shard(do, g)
    dqs, dks, dvs = method.backward_shards(comm, ctx, dos)
    elapsed = time.perf_counter() - t0
    flat = tuple(
        np.concatenate(parts, axis=-2)
        for parts in (os_, dqs, dks, dvs)
    )
    return elapsed, flat


def run_attention_suite(smoke: bool, repeats: int) -> list[dict]:
    results = []
    rng = np.random.default_rng(1)
    mask = CausalMask()
    for case in _method_cases(smoke):
        s, d, h = case["seq"], case["head_dim"], case["heads"]
        q, k, v, do = (rng.normal(size=(h, s, d)) for _ in range(4))
        dense_s = float("inf")
        plan_s = float("inf")
        dense_out = plan_out = None
        snap = None
        for _ in range(repeats):
            with use_planning(False):
                t, out = _run_method(case, q, k, v, do, mask)
            if t < dense_s:
                dense_s, dense_out = t, out
            counters.reset()
            with use_planning(True):
                t, out = _run_method(case, q, k, v, do, mask)
            if t < plan_s:
                plan_s, plan_out = t, out
                snap = counters.snapshot()
        max_diff = max(
            float(np.max(np.abs(a - b))) for a, b in zip(dense_out, plan_out)
        )
        results.append({
            "name": case["name"],
            "params": {k_: v_ for k_, v_ in case.items() if k_ != "name"},
            "dense_s": dense_s,
            "planned_s": plan_s,
            "speedup": dense_s / plan_s if plan_s > 0 else float("inf"),
            "tiles_computed": snap["tiles_computed"],
            "tiles_skipped": snap["tiles_skipped"],
            "skip_fraction": snap["skip_fraction"],
            "max_abs_diff": max_diff,
        })
    return results


# --- baseline gate ------------------------------------------------------------


def check_results(
    results: list[dict], baseline: list[dict] | None, tolerance: float,
    suite: str, *, smoke: bool = False,
) -> list[str]:
    """Return a list of human-readable regression messages (empty = pass)."""
    problems = []
    for rec in results:
        if rec["max_abs_diff"] > MAX_NUMERIC_DIFF:
            problems.append(
                f"{suite}/{rec['name']}: planned path deviates from dense "
                f"by {rec['max_abs_diff']:.3e} (> {MAX_NUMERIC_DIFF})"
            )
    causal = next(
        (r for r in results if r["name"] in ("causal", "megatron-cp")), None
    )
    if suite == "kernels" and causal is not None:
        if causal["skip_fraction"] < CAUSAL_SKIP_FLOOR:
            problems.append(
                f"kernels/causal: skip fraction {causal['skip_fraction']:.3f}"
                f" below the {CAUSAL_SKIP_FLOOR:.0%} acceptance floor"
            )
        # The wall-clock-win criterion only applies at full size: smoke
        # configs are too small for skipped tiles to beat plan overhead.
        if not smoke and causal["speedup"] <= 1.0:
            problems.append(
                f"kernels/causal: no wall-clock win (speedup "
                f"{causal['speedup']:.3f}x)"
            )
    if baseline is None:
        return problems
    base_by_name = {r["name"]: r for r in baseline}
    for rec in results:
        base = base_by_name.get(rec["name"])
        if base is None:
            continue
        if base.get("params") != rec.get("params"):
            continue  # config changed; counts incomparable
        for key in ("tiles_computed", "tiles_skipped"):
            if rec[key] != base[key]:
                problems.append(
                    f"{suite}/{rec['name']}: {key} changed "
                    f"{base[key]} -> {rec[key]} (deterministic count)"
                )
        floor = base["speedup"] / tolerance
        if rec["speedup"] < floor:
            problems.append(
                f"{suite}/{rec['name']}: speedup regressed "
                f"{base['speedup']:.3f}x -> {rec['speedup']:.3f}x "
                f"(floor {floor:.3f}x at tolerance {tolerance}x)"
            )
    return problems


def _payload(results: list[dict], suite: str, smoke: bool) -> dict:
    return {
        "suite": suite,
        "smoke": smoke,
        "schema": {
            "dense_s": "best wall-clock of the dense-mask baseline (s)",
            "planned_s": "best wall-clock of the tile-planned path (s)",
            "speedup": "dense_s / planned_s",
            "tiles_computed": "sub-tiles executed by the planned path",
            "tiles_skipped": "sub-tiles skipped as empty",
            "skip_fraction": "tiles_skipped / (computed + skipped)",
            "max_abs_diff": "max |dense - planned| over outputs and grads",
        },
        "results": results,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf.bench",
        description="kernel/attention microbenchmarks with a JSON "
        "regression gate",
    )
    parser.add_argument("--suite", choices=["kernels", "attention", "all"],
                        default="all")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--smoke", action="store_true",
                        help="small configs for CI")
    parser.add_argument("--check", action="store_true",
                        help="fail on regression vs the committed baseline")
    parser.add_argument("--tolerance", type=float, default=1.5,
                        help="allowed speedup regression factor in --check")
    parser.add_argument("--out", type=Path, default=None,
                        help="output directory (default: repo root)")
    args = parser.parse_args(argv)

    out_dir = args.out or repo_root()
    out_dir.mkdir(parents=True, exist_ok=True)
    suites = []
    if args.suite in ("kernels", "all"):
        suites.append(("kernels", run_kernel_suite))
    if args.suite in ("attention", "all"):
        suites.append(("attention", run_attention_suite))

    problems = []
    for suite, runner in suites:
        path = out_dir / f"BENCH_{suite}.json"
        baseline = None
        if args.check and path.exists():
            baseline = json.loads(path.read_text()).get("results")
        results = runner(args.smoke, args.repeats)
        if args.check:
            problems += check_results(
                results, baseline, args.tolerance, suite, smoke=args.smoke
            )
        path.write_text(
            json.dumps(_payload(results, suite, args.smoke), indent=2)
            + "\n"
        )
        for rec in results:
            print(
                f"[{suite}] {rec['name']:<18} dense {rec['dense_s']*1e3:8.2f}ms"
                f"  planned {rec['planned_s']*1e3:8.2f}ms"
                f"  speedup {rec['speedup']:5.2f}x"
                f"  skip {rec['skip_fraction']:6.1%}"
                f"  maxdiff {rec['max_abs_diff']:.2e}"
            )
        print(f"wrote {path}")

    if problems:
        print("\nREGRESSIONS:", file=sys.stderr)
        for p in problems:
            print(f"  - {p}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
