"""Benchmark regression harness (``python -m repro.perf.bench``).

Runs kernel- and attention-method microbenchmarks twice — once with the
legacy dense-mask path (``use_planning(False)``) and once with mask-aware
tile planning — and writes machine-readable results to ``BENCH_kernels.json``
and ``BENCH_attention.json`` at the repo root.  Each record carries the
configuration, wall-clock times, sub-tile skip accounting from
:data:`repro.kernels.tileplan.counters`, the dense-vs-planned speedup, and
the maximum numeric deviation between the two paths (gated at ``1e-12``).

``--check`` compares a fresh run against the committed JSON baselines:

* tile counts must match the baseline exactly (they are deterministic);
* per-case speedup must not regress below ``baseline / tolerance``;
* the causal kernel case must keep skipping >= 40 % of sub-tiles (always)
  and show a wall-clock win (full-size runs only — smoke configs are too
  small for skipped tiles to beat plan overhead).

Exit status is non-zero on any regression, which is what the CI
``perf-smoke`` job gates on.  ``--check`` still rewrites the JSON files so
CI uploads the fresh numbers as artifacts.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro.attention.methods import get_method
from repro.comm import SimCommunicator
from repro.topology import make_cluster
from repro.kernels import (
    BiasTileCache,
    KernelWorkspace,
    TilePlan,
    counters,
    get_backend,
    use_planning,
)
from repro.masks import ALiBiMask, CausalMask, sliding_window_block_mask
from repro.masks.patterns import SlidingWindowMask

#: Required causal skip fraction (acceptance criterion).
CAUSAL_SKIP_FLOOR = 0.4

#: Numeric identity gate between dense and planned paths.
MAX_NUMERIC_DIFF = 1e-12


def repo_root() -> Path:
    return Path(__file__).resolve().parents[3]


# --- kernel suite -------------------------------------------------------------


def _kernel_cases(smoke: bool) -> list[dict]:
    s, d, h, blk = (256, 16, 2, 32) if smoke else (768, 32, 4, 64)
    return [
        {"name": "causal", "seq": s, "head_dim": d, "heads": h, "block": blk},
        {"name": "sliding-window", "seq": s, "head_dim": d, "heads": h,
         "block": blk, "window": s // 4},
        {"name": "block-sparse", "seq": s, "head_dim": d, "heads": h,
         "block": blk, "mask_block": s // 8, "window_blocks": 2},
        {"name": "alibi", "seq": s, "head_dim": d, "heads": h, "block": blk},
    ]


def _kernel_mask(case: dict):
    if case["name"] == "causal":
        return CausalMask()
    if case["name"] == "sliding-window":
        return SlidingWindowMask(case["window"])
    if case["name"] == "block-sparse":
        return sliding_window_block_mask(
            case["seq"], case["mask_block"], case["window_blocks"]
        )
    if case["name"] == "alibi":
        return ALiBiMask(case["heads"])
    raise ValueError(case["name"])


def _time_kernel_pass(q, k, v, do, mask, case, *, planned: bool, repeats: int):
    """One fwd+bwd measurement; returns (best_seconds, outputs, counters)."""
    s = case["seq"]
    blk = case["block"]
    idx = np.arange(s)
    best = float("inf")
    outs = None
    snap = None
    for _ in range(repeats):
        counters.reset()
        t0 = time.perf_counter()
        if planned:
            plan = TilePlan.build(
                mask, idx, idx, blk, blk, bias_cache=BiasTileCache()
            )
            ws = KernelWorkspace()
            backend = get_backend()
            o, lse = backend.flash_forward(q, k, v, plan=plan, workspace=ws)
            grads = backend.flash_backward(
                q, k, v, o, lse, do, plan=plan, workspace=ws
            )
        else:
            dense = mask.dense(s)
            bias = mask.bias_block(idx, idx)
            backend = get_backend()
            o, lse = backend.flash_forward(
                q, k, v, mask=dense, bias=bias, block_q=blk, block_k=blk
            )
            grads = backend.flash_backward(
                q, k, v, o, lse, do, mask=dense, bias=bias,
                block_q=blk, block_k=blk,
            )
        elapsed = time.perf_counter() - t0
        if elapsed < best:
            best = elapsed
            outs = (o, lse, *grads)
            snap = counters.snapshot()
    return best, outs, snap


def run_kernel_suite(smoke: bool, repeats: int) -> list[dict]:
    results = []
    rng = np.random.default_rng(0)
    for case in _kernel_cases(smoke):
        s, d, h = case["seq"], case["head_dim"], case["heads"]
        q, k, v, do = (rng.normal(size=(h, s, d)) for _ in range(4))
        mask = _kernel_mask(case)
        dense_s, dense_out, _ = _time_kernel_pass(
            q, k, v, do, mask, case, planned=False, repeats=repeats
        )
        plan_s, plan_out, snap = _time_kernel_pass(
            q, k, v, do, mask, case, planned=True, repeats=repeats
        )
        max_diff = max(
            float(np.max(np.abs(a - b))) for a, b in zip(dense_out, plan_out)
        )
        results.append({
            "name": case["name"],
            "params": {k_: v_ for k_, v_ in case.items() if k_ != "name"},
            "dense_s": dense_s,
            "planned_s": plan_s,
            "speedup": dense_s / plan_s if plan_s > 0 else float("inf"),
            "tiles_computed": snap["tiles_computed"],
            "tiles_skipped": snap["tiles_skipped"],
            "skip_fraction": snap["skip_fraction"],
            "bias_tiles_built": snap["bias_tiles_built"],
            "bias_tiles_reused": snap["bias_tiles_reused"],
            "max_abs_diff": max_diff,
        })
    return results


# --- kernel-backend suite -----------------------------------------------------

#: Required threaded speedup on the full-size causal flash forward — only
#: enforced when the host actually has >= 4 cores and the pool >= 4
#: workers (a 1-core runner cannot speed anything up; the JSON records
#: the honest numbers either way).
THREADED_SPEEDUP_FLOOR = 1.3
THREADED_GATE_MIN_CPUS = 4


def run_backends_suite(smoke: bool, repeats: int) -> list[dict]:
    """Every registered backend on the full-size causal flash kernels.

    Records per-backend forward / forward+backward wall time, the
    forward speedup over ``reference``, and whether every output and
    gradient is bitwise-equal to the reference backend's.
    """
    from repro.kernels import available_backends

    s, d, h, blk = (256, 16, 2, 32) if smoke else (768, 32, 4, 64)
    rng = np.random.default_rng(2)
    q, k, v, do = (rng.normal(size=(h, s, d)) for _ in range(4))
    mask = CausalMask()
    idx = np.arange(s)
    plan = TilePlan.build(mask, idx, idx, blk, blk)
    outs: dict[str, tuple] = {}
    times: dict[str, tuple[float, float]] = {}
    for name in available_backends():
        backend = get_backend(name)
        best_f = best_fb = float("inf")
        for _ in range(repeats):
            ws = KernelWorkspace()
            t0 = time.perf_counter()
            o, lse = backend.flash_forward(q, k, v, plan=plan, workspace=ws)
            fwd = time.perf_counter() - t0
            t0 = time.perf_counter()
            grads = backend.flash_backward(
                q, k, v, o, lse, do, plan=plan, workspace=ws
            )
            bwd = time.perf_counter() - t0
            best_f = min(best_f, fwd)
            best_fb = min(best_fb, fwd + bwd)
        outs[name] = (o, lse, *grads)
        times[name] = (best_f, best_fb)
    ref = outs["reference"]
    ref_fwd = times["reference"][0]
    results = []
    for name in available_backends():
        backend = get_backend(name)
        bitwise = all(np.array_equal(a, b) for a, b in zip(ref, outs[name]))
        results.append({
            "name": name,
            "params": {"seq": s, "head_dim": d, "heads": h, "block": blk,
                       "mask": "causal"},
            "fwd_s": times[name][0],
            "fwd_bwd_s": times[name][1],
            "speedup_fwd": ref_fwd / times[name][0] if times[name][0] > 0
            else float("inf"),
            "bitwise_identical": bool(bitwise),
            "workers": getattr(backend, "workers", 1),
            "cpu_count": os.cpu_count() or 1,
        })
    return results


def check_backend_results(
    results: list[dict], baseline: list[dict] | None, *, smoke: bool
) -> list[str]:
    problems = []
    for rec in results:
        if not rec["bitwise_identical"]:
            problems.append(
                f"backends/{rec['name']}: outputs/grads not bitwise-equal "
                "to the reference backend"
            )
        gated = (
            rec["name"] == "threaded"
            and not smoke
            and rec["cpu_count"] >= THREADED_GATE_MIN_CPUS
            and rec["workers"] >= THREADED_GATE_MIN_CPUS
        )
        if gated and rec["speedup_fwd"] < THREADED_SPEEDUP_FLOOR:
            problems.append(
                f"backends/threaded: forward speedup "
                f"{rec['speedup_fwd']:.3f}x below the "
                f"{THREADED_SPEEDUP_FLOOR}x floor "
                f"({rec['cpu_count']} cpus, {rec['workers']} workers)"
            )
    return problems


# --- blockwise-MLP suite ------------------------------------------------------


def _mlp_cases(smoke: bool) -> list[dict]:
    if smoke:
        return [{"name": "chunk-64", "seq": 256, "dim": 32, "hidden": 128,
                 "chunk": 64}]
    return [
        {"name": "chunk-32", "seq": 1024, "dim": 48, "hidden": 192,
         "chunk": 32},
        {"name": "chunk-128", "seq": 1024, "dim": 48, "hidden": 192,
         "chunk": 128},
    ]


def run_mlp_suite(smoke: bool, repeats: int) -> list[dict]:
    """Dense composed SwiGLU vs the fused blockwise FFN.

    Gates bitwise identity of the output and all four gradients, times
    both paths, and pins the persistent saved-bytes closed forms of
    :mod:`repro.perf.memory` against the live memory tracker.
    """
    from repro.nn.memory import get_tracker
    from repro.nn.modules import SwiGLU
    from repro.nn.tensor import Tensor
    from repro.perf.memory import (
        swiglu_dense_saved_bytes,
        swiglu_fused_saved_bytes,
    )

    results = []
    rng = np.random.default_rng(3)
    for case in _mlp_cases(smoke):
        s, d, hid, chunk = (
            case["seq"], case["dim"], case["hidden"], case["chunk"]
        )
        x_data = rng.normal(size=(s, d))
        dy = rng.normal(size=(s, d))

        def run(chunk_size):
            tracker = get_tracker()
            base = tracker.current_saved_bytes
            module = SwiGLU(
                d, hid, np.random.default_rng(7), mlp_chunk_size=chunk_size
            )
            best = float("inf")
            for _ in range(repeats):
                x = Tensor(x_data.copy(), requires_grad=True)
                t0 = time.perf_counter()
                y = module(x)
                saved = tracker.current_saved_bytes - base
                y.backward(dy)
                best = min(best, time.perf_counter() - t0)
            grads = (
                x.grad, module.gate.weight.grad, module.up.weight.grad,
                module.down.weight.grad,
            )
            return best, (y.data, *grads), saved

        dense_s, dense_out, dense_saved = run(None)
        chunk_s, chunk_out, chunk_saved = run(chunk)
        max_diff = max(
            float(np.max(np.abs(a - b)))
            for a, b in zip(dense_out, chunk_out)
        )
        closed_ok = (
            dense_saved == swiglu_dense_saved_bytes(s, d, hid)
            and chunk_saved == swiglu_fused_saved_bytes(s, d, hid)
        )
        results.append({
            "name": case["name"],
            "params": {k_: v_ for k_, v_ in case.items() if k_ != "name"},
            "dense_s": dense_s,
            "blockwise_s": chunk_s,
            "dense_saved_bytes": dense_saved,
            "blockwise_saved_bytes": chunk_saved,
            "saved_bytes_reduction": (
                dense_saved / chunk_saved if chunk_saved else float("inf")
            ),
            "closed_form_ok": bool(closed_ok),
            "max_abs_diff": max_diff,
        })
    return results


def check_mlp_results(
    results: list[dict], baseline: list[dict] | None
) -> list[str]:
    problems = []
    for rec in results:
        if rec["max_abs_diff"] != 0.0:
            problems.append(
                f"mlp/{rec['name']}: blockwise path deviates from the "
                f"composed dense FFN by {rec['max_abs_diff']:.3e} "
                "(must be bitwise-identical)"
            )
        if not rec["closed_form_ok"]:
            problems.append(
                f"mlp/{rec['name']}: tracker-measured saved bytes diverge "
                "from the repro.perf.memory closed forms"
            )
        if rec["saved_bytes_reduction"] <= 1.0:
            problems.append(
                f"mlp/{rec['name']}: no peak-memory reduction "
                f"({rec['saved_bytes_reduction']:.2f}x)"
            )
    if baseline is not None:
        base_by_name = {r["name"]: r for r in baseline}
        for rec in results:
            base = base_by_name.get(rec["name"])
            if base is None or base.get("params") != rec.get("params"):
                continue
            for key in ("dense_saved_bytes", "blockwise_saved_bytes"):
                if rec[key] != base[key]:
                    problems.append(
                        f"mlp/{rec['name']}: {key} changed "
                        f"{base[key]} -> {rec[key]} (deterministic count)"
                    )
    return problems


# --- attention-method suite ---------------------------------------------------


def _method_cases(smoke: bool) -> list[dict]:
    g = 4
    s, d, h, blk = (128, 8, 4, 16) if smoke else (256, 16, 4, 32)
    names = ["megatron-cp", "burst", "loongtrain-double"]
    if not smoke:
        names.append("usp")
    return [
        {"name": name, "world": g, "seq": s, "head_dim": d, "heads": h,
         "block": blk}
        for name in names
    ]


def _run_method(case: dict, q, k, v, do, mask) -> tuple[float, tuple]:
    kwargs = {"block_size": case["block"]}
    if case["name"] == "usp":
        kwargs["ulysses_degree"] = 2
    method = get_method(case["name"], **kwargs)
    g = case["world"]
    comm = SimCommunicator(make_cluster(g, gpus_per_node=max(2, g // 2)))
    s = case["seq"]
    idxs = method.indices(s, g)
    qs, ks, vs = method.shard(q, g), method.shard(k, g), method.shard(v, g)
    t0 = time.perf_counter()
    os_, lses, ctx = method.forward_shards(comm, qs, ks, vs, idxs, mask, None)
    dos = method.shard(do, g)
    dqs, dks, dvs = method.backward_shards(comm, ctx, dos)
    elapsed = time.perf_counter() - t0
    flat = tuple(
        np.concatenate(parts, axis=-2)
        for parts in (os_, dqs, dks, dvs)
    )
    return elapsed, flat


def run_attention_suite(smoke: bool, repeats: int) -> list[dict]:
    results = []
    rng = np.random.default_rng(1)
    mask = CausalMask()
    for case in _method_cases(smoke):
        s, d, h = case["seq"], case["head_dim"], case["heads"]
        q, k, v, do = (rng.normal(size=(h, s, d)) for _ in range(4))
        dense_s = float("inf")
        plan_s = float("inf")
        dense_out = plan_out = None
        snap = None
        for _ in range(repeats):
            with use_planning(False):
                t, out = _run_method(case, q, k, v, do, mask)
            if t < dense_s:
                dense_s, dense_out = t, out
            counters.reset()
            with use_planning(True):
                t, out = _run_method(case, q, k, v, do, mask)
            if t < plan_s:
                plan_s, plan_out = t, out
                snap = counters.snapshot()
        max_diff = max(
            float(np.max(np.abs(a - b))) for a, b in zip(dense_out, plan_out)
        )
        results.append({
            "name": case["name"],
            "params": {k_: v_ for k_, v_ in case.items() if k_ != "name"},
            "dense_s": dense_s,
            "planned_s": plan_s,
            "speedup": dense_s / plan_s if plan_s > 0 else float("inf"),
            "tiles_computed": snap["tiles_computed"],
            "tiles_skipped": snap["tiles_skipped"],
            "skip_fraction": snap["skip_fraction"],
            "max_abs_diff": max_diff,
        })
    return results


# --- baseline gate ------------------------------------------------------------


def check_results(
    results: list[dict], baseline: list[dict] | None, tolerance: float,
    suite: str, *, smoke: bool = False,
) -> list[str]:
    """Return a list of human-readable regression messages (empty = pass)."""
    if suite == "backends":
        return check_backend_results(results, baseline, smoke=smoke)
    if suite == "mlp":
        return check_mlp_results(results, baseline)
    problems = []
    for rec in results:
        if rec["max_abs_diff"] > MAX_NUMERIC_DIFF:
            problems.append(
                f"{suite}/{rec['name']}: planned path deviates from dense "
                f"by {rec['max_abs_diff']:.3e} (> {MAX_NUMERIC_DIFF})"
            )
    causal = next(
        (r for r in results if r["name"] in ("causal", "megatron-cp")), None
    )
    if suite == "kernels" and causal is not None:
        if causal["skip_fraction"] < CAUSAL_SKIP_FLOOR:
            problems.append(
                f"kernels/causal: skip fraction {causal['skip_fraction']:.3f}"
                f" below the {CAUSAL_SKIP_FLOOR:.0%} acceptance floor"
            )
        # The wall-clock-win criterion only applies at full size: smoke
        # configs are too small for skipped tiles to beat plan overhead.
        if not smoke and causal["speedup"] <= 1.0:
            problems.append(
                f"kernels/causal: no wall-clock win (speedup "
                f"{causal['speedup']:.3f}x)"
            )
    if baseline is None:
        return problems
    base_by_name = {r["name"]: r for r in baseline}
    for rec in results:
        base = base_by_name.get(rec["name"])
        if base is None:
            continue
        if base.get("params") != rec.get("params"):
            continue  # config changed; counts incomparable
        for key in ("tiles_computed", "tiles_skipped"):
            if rec[key] != base[key]:
                problems.append(
                    f"{suite}/{rec['name']}: {key} changed "
                    f"{base[key]} -> {rec[key]} (deterministic count)"
                )
        floor = base["speedup"] / tolerance
        if rec["speedup"] < floor:
            problems.append(
                f"{suite}/{rec['name']}: speedup regressed "
                f"{base['speedup']:.3f}x -> {rec['speedup']:.3f}x "
                f"(floor {floor:.3f}x at tolerance {tolerance}x)"
            )
    return problems


_SCHEMAS = {
    "backends": {
        "fwd_s": "best wall-clock of the causal flash forward (s)",
        "fwd_bwd_s": "best wall-clock of forward + backward (s)",
        "speedup_fwd": "reference fwd_s / this backend's fwd_s",
        "bitwise_identical": "o/lse/dq/dk/dv bitwise-equal to reference",
        "workers": "thread-pool size (1 for sequential backends)",
        "cpu_count": "os.cpu_count() on the benchmarking host",
    },
    "mlp": {
        "dense_s": "best fwd+bwd wall-clock of the composed SwiGLU (s)",
        "blockwise_s": "best fwd+bwd wall-clock of the fused blockwise FFN (s)",
        "dense_saved_bytes": "tracker-measured persistent saves, composed path",
        "blockwise_saved_bytes": "tracker-measured persistent saves, fused path",
        "saved_bytes_reduction": "dense_saved_bytes / blockwise_saved_bytes",
        "closed_form_ok": "saves match repro.perf.memory closed forms exactly",
        "max_abs_diff": "max |dense - blockwise| over y and all four grads",
    },
}

_DEFAULT_SCHEMA = {
    "dense_s": "best wall-clock of the dense-mask baseline (s)",
    "planned_s": "best wall-clock of the tile-planned path (s)",
    "speedup": "dense_s / planned_s",
    "tiles_computed": "sub-tiles executed by the planned path",
    "tiles_skipped": "sub-tiles skipped as empty",
    "skip_fraction": "tiles_skipped / (computed + skipped)",
    "max_abs_diff": "max |dense - planned| over outputs and grads",
}


def _payload(results: list[dict], suite: str, smoke: bool) -> dict:
    return {
        "suite": suite,
        "smoke": smoke,
        "schema": _SCHEMAS.get(suite, _DEFAULT_SCHEMA),
        "results": results,
    }


def _print_record(suite: str, rec: dict) -> None:
    if suite == "backends":
        print(
            f"[{suite}] {rec['name']:<18} fwd {rec['fwd_s']*1e3:8.2f}ms"
            f"  fwd+bwd {rec['fwd_bwd_s']*1e3:8.2f}ms"
            f"  speedup {rec['speedup_fwd']:5.2f}x"
            f"  workers {rec['workers']}"
            f"  bitwise {'yes' if rec['bitwise_identical'] else 'NO'}"
        )
    elif suite == "mlp":
        print(
            f"[{suite}] {rec['name']:<18} dense {rec['dense_s']*1e3:8.2f}ms"
            f"  blockwise {rec['blockwise_s']*1e3:8.2f}ms"
            f"  saved {rec['dense_saved_bytes']:>9d}B ->"
            f" {rec['blockwise_saved_bytes']:>7d}B"
            f" ({rec['saved_bytes_reduction']:4.1f}x)"
            f"  maxdiff {rec['max_abs_diff']:.2e}"
        )
    else:
        print(
            f"[{suite}] {rec['name']:<18} dense {rec['dense_s']*1e3:8.2f}ms"
            f"  planned {rec['planned_s']*1e3:8.2f}ms"
            f"  speedup {rec['speedup']:5.2f}x"
            f"  skip {rec['skip_fraction']:6.1%}"
            f"  maxdiff {rec['max_abs_diff']:.2e}"
        )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf.bench",
        description="kernel/attention microbenchmarks with a JSON "
        "regression gate",
    )
    parser.add_argument(
        "--suite",
        choices=["kernels", "attention", "backends", "mlp", "all"],
        default="all",
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--smoke", action="store_true",
                        help="small configs for CI")
    parser.add_argument("--check", action="store_true",
                        help="fail on regression vs the committed baseline")
    parser.add_argument("--tolerance", type=float, default=1.5,
                        help="allowed speedup regression factor in --check")
    parser.add_argument("--out", type=Path, default=None,
                        help="output directory (default: repo root)")
    args = parser.parse_args(argv)

    out_dir = args.out or repo_root()
    out_dir.mkdir(parents=True, exist_ok=True)
    suites = []
    if args.suite in ("kernels", "all"):
        suites.append(("kernels", run_kernel_suite))
    if args.suite in ("attention", "all"):
        suites.append(("attention", run_attention_suite))
    if args.suite in ("backends", "all"):
        suites.append(("backends", run_backends_suite))
    if args.suite in ("mlp", "all"):
        suites.append(("mlp", run_mlp_suite))

    problems = []
    for suite, runner in suites:
        path = out_dir / f"BENCH_{suite}.json"
        baseline = None
        if args.check and path.exists():
            baseline = json.loads(path.read_text()).get("results")
        results = runner(args.smoke, args.repeats)
        if args.check:
            problems += check_results(
                results, baseline, args.tolerance, suite, smoke=args.smoke
            )
        path.write_text(
            json.dumps(_payload(results, suite, args.smoke), indent=2)
            + "\n"
        )
        for rec in results:
            _print_record(suite, rec)
        print(f"wrote {path}")

    if problems:
        print("\nREGRESSIONS:", file=sys.stderr)
        for p in problems:
            print(f"  - {p}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
