"""Performance models: discrete-event simulation, cost formulas, memory.

Wall-clock results in the paper depend on three ingredients, each modelled
in its own module:

* :mod:`repro.perf.des` — a generic discrete-event simulator with
  unit-capacity resources (a GPU's compute stream, its NVLink channel, its
  NIC).  Method-specific task graphs express *what can overlap what*.
* :mod:`repro.perf.cost` — analytic costs: link transfer times (Table 1's
  formulas), matmul times from FLOPs at calibrated efficiency.
* :mod:`repro.perf.memory` — per-GPU peak memory: FSDP-sharded states,
  activations under each checkpoint policy, LM-head logits by head mode.

:mod:`repro.perf.schedules` builds the per-method attention task graphs and
the end-to-end training-step model that Figures 12–14 and Tables 2, 4, 5
are generated from.
"""

from repro.perf.des import Resource, Simulator, Task
from repro.perf.cost import (
    CommCost,
    table1_comm_times,
    attention_step_sizes,
    degraded_attention_step_sizes,
    degraded_table1_comm_times,
    degraded_topology,
    failure_detection_time,
    rank_failure_downtime,
    matmul_time,
    causal_tile_counts,
    sliding_window_tile_counts,
    block_sparse_tile_counts,
)
from repro.perf.memory import MemoryModel, MemoryBreakdown, TrainingSetup
from repro.perf.schedules.attention import (
    ATTENTION_SCHEDULES,
    attention_pass_time,
    degraded_attention_pass_time,
)
from repro.perf.schedules.end_to_end import (
    EndToEndModel,
    EndToEndResult,
    end_to_end_step,
)
from repro.perf.trace import trace_to_chrome_json
from repro.perf.criticalpath import (
    METHOD_DES_FLAGS,
    attention_pass_sim,
    closed_form_pass_comm,
    predicted_critical_path,
    summarize_sim,
)

__all__ = [
    "METHOD_DES_FLAGS",
    "attention_pass_sim",
    "closed_form_pass_comm",
    "predicted_critical_path",
    "summarize_sim",
    "Resource",
    "Simulator",
    "Task",
    "CommCost",
    "table1_comm_times",
    "attention_step_sizes",
    "degraded_attention_step_sizes",
    "degraded_table1_comm_times",
    "degraded_topology",
    "failure_detection_time",
    "rank_failure_downtime",
    "matmul_time",
    "causal_tile_counts",
    "sliding_window_tile_counts",
    "block_sparse_tile_counts",
    "MemoryModel",
    "MemoryBreakdown",
    "TrainingSetup",
    "attention_pass_time",
    "degraded_attention_pass_time",
    "ATTENTION_SCHEDULES",
    "EndToEndModel",
    "EndToEndResult",
    "end_to_end_step",
    "trace_to_chrome_json",
]
