"""Analytic cost primitives: link times, Table 1 formulas, matmul times.

Table 1 of the paper compares total *communication time* of the three
ring-family methods with ``T_intra = Lat_intra + P / B_intra`` and
``T_inter = Lat_inter + P / B_inter`` where ``P`` is the per-step payload:

=================  =============================================================
RingAttention      ``6 * max(S_steps * T_intra, S_steps * T_inter)``
DoubleRing         ``4 * max(I * T_intra, E * T_inter) + 2 * (I * T_intra + E * T_inter)``
BurstAttention     ``5 * max(I * T_intra, E * T_inter)``
=================  =============================================================

with ``I = G - n_nodes`` intra transitions and ``E = n_nodes`` inter
transitions (the paper's ``N - N_inter`` and ``N_inter``).  The
coefficients are payload rounds: forward moves 2 shard-sized buffers per
step (K, V), Algorithm 1's backward 4 (K, V, dK, dV), Algorithm 2's 3
(Q, dQ, dO; the D/Lse rows are a ``2/d`` relative term folded in by
:func:`attention_step_sizes`).  The ``max`` terms are fully-overlapped
intra/inter phases; DoubleRing's ``+2(...)`` term is its *unoverlapped*
gradient communication — the deficiency BurstAttention's delayed-ring
scheme removes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.topology import ClusterTopology, LinkClass, shrink_cluster


@dataclass(frozen=True)
class CommCost:
    """Communication time split into overlappable phases."""

    intra_time: float
    inter_time: float

    @property
    def overlapped(self) -> float:
        """Time when intra and inter phases run concurrently."""
        return max(self.intra_time, self.inter_time)

    @property
    def serialized(self) -> float:
        """Time when they cannot overlap."""
        return self.intra_time + self.inter_time


def link_time(topology: ClusterTopology, nbytes: float, cls: LinkClass) -> float:
    """One hop's time on the given link class."""
    return topology.transfer_time(nbytes, cls)


def ring_phase_cost(
    topology: ClusterTopology, payload_bytes: float
) -> CommCost:
    """Cost of one full circulation (G-1 transitions plus the return hop,
    i.e. G hops) split into intra and inter phases for the topology-aware
    double ring.

    Of the ``G`` hops, ``G - n_nodes`` are intra-node and ``n_nodes`` are
    inter-node (each inter transition drives all NICs concurrently, so it
    costs a single ``T_inter`` per transition).
    """
    g = topology.world_size
    n_nodes = topology.num_nodes
    intra_hops = g - n_nodes
    inter_hops = n_nodes if n_nodes > 1 else 0
    if n_nodes == 1:
        intra_hops = g
    t_intra = link_time(topology, payload_bytes, LinkClass.INTRA)
    t_inter = link_time(topology, payload_bytes, LinkClass.INTER)
    return CommCost(
        intra_time=intra_hops * t_intra,
        inter_time=inter_hops * t_inter,
    )


def flat_ring_step_time(topology: ClusterTopology, payload_bytes: float) -> float:
    """Per-transition time of the flat global ring.

    All ranks advance in lockstep, so every transition is gated by the
    slowest hop — the inter-node link whenever there is more than one node.
    """
    if topology.num_nodes > 1:
        return link_time(topology, payload_bytes, LinkClass.INTER)
    return link_time(topology, payload_bytes, LinkClass.INTRA)


def attention_step_sizes(
    seq_len: int, hidden: int, world_size: int, bytes_per_elem: int = 2
) -> dict[str, float]:
    """Per-step ring payload bytes for each pass and algorithm.

    ``hidden`` is the model dimension (heads folded in).  Returns bytes of
    one circulating bundle per transition:

    * ``fwd``: K + V = ``2 * (S/G) * h``
    * ``bwd_alg1``: K + V + dK + dV = ``4 * (S/G) * h``
    * ``bwd_alg2``: Q + dQ + dO + D + Lse = ``(3h + 2) * (S/G)``
    """
    shard = seq_len / world_size
    return {
        "fwd": 2 * shard * hidden * bytes_per_elem,
        "bwd_alg1": 4 * shard * hidden * bytes_per_elem,
        "bwd_alg2": (3 * hidden + 2) * shard * bytes_per_elem,
    }


def bidirectional_step_split(num_steps: int) -> tuple[int, int]:
    """``(forward_transitions, reverse_moves)`` of a bidirectional ring.

    Mirrors :func:`repro.comm.ring.bidirectional_split` (kept free of a
    ``repro.comm`` import so the analytic layer stays standalone): of the
    ``S - 1`` boundary transitions, the forward stream serves the first
    ``S // 2`` and the counter-rotating stream the remaining
    ``(S - 1) // 2``.
    """
    return num_steps // 2, (num_steps - 1) // 2


def bidirectional_direction_bytes(
    seq_len: int,
    hidden: int,
    world_size: int,
    num_steps: int | None = None,
    bytes_per_elem: int = 2,
    n_heads: int = 1,
) -> dict[str, dict[str, float]]:
    """Per-rank send bytes of each pass, split by ring direction.

    Under ``ring_mode="bidirectional"`` the read-only bundle parts travel
    the short way round on a counter-rotating ``rev`` stream, while any
    gradient accumulators keep riding the full ``fwd`` circulation (their
    addition order is what makes the results bitwise-identical).  With
    ``S`` schedule steps, ``T_f = S // 2`` forward transitions and
    ``R = (S - 1) // 2`` reverse moves, a shard of ``s = seq_len / G``
    tokens and ``h = hidden``:

    * ``fwd`` pass — (K, V) both ways, no return hop:
      ``fwd = T_f * 2sh``, ``rev = R * 2sh``.
    * ``bwd_alg1`` — (K, V) reverse; (dK, dV) ride all ``S - 1`` forward
      transitions plus the return hop:
      ``fwd = T_f * 4sh + (R + 1) * 2sh``, ``rev = R * 2sh``.
    * ``bwd_alg2`` — (Q, dO, D, Lse) reverse; dQ forward + return:
      ``fwd = T_f * (3h + 2H)s + (R + 1) * sh``, ``rev = R * (2h + 2H)s``
      where ``H = n_heads`` scales the per-head-per-token D/Lse rows (the
      paper's single-head statement has ``H = 1``).

    The unidirectional totals (``4Nd`` / ``3Nd + 2N``) are recovered as
    ``fwd + rev`` *plus* the read-only share of the skipped long way round
    — bidirectional strictly reduces total bytes on every pass.
    """
    if num_steps is None:
        num_steps = world_size
    t_f, rev = bidirectional_step_split(num_steps)
    shard = seq_len / world_size
    b = bytes_per_elem
    kv = 2 * shard * hidden * b
    grads_kv = 2 * shard * hidden * b
    q_side = (2 * hidden + 2 * n_heads) * shard * b
    dq = shard * hidden * b
    return {
        "fwd": {"fwd": t_f * kv, "rev": rev * kv},
        "bwd_alg1": {
            "fwd": t_f * (kv + grads_kv) + (rev + 1) * grads_kv,
            "rev": rev * kv,
        },
        "bwd_alg2": {
            "fwd": t_f * (q_side + dq) + (rev + 1) * dq,
            "rev": rev * q_side,
        },
    }


def table1_comm_times(
    topology: ClusterTopology,
    seq_len: int,
    hidden: int,
    bytes_per_elem: int = 2,
) -> dict[str, float]:
    """Evaluate Table 1's three formulas for a concrete cluster and size.

    Returns total attention communication time (forward + backward) for
    ``ring`` (flat, lockstep), ``double_ring`` (topology-aware, gradient
    comm unoverlapped), and ``burst`` (topology-aware, fully overlapped,
    Algorithm 2 payload).
    """
    sizes = attention_step_sizes(seq_len, hidden, topology.world_size, bytes_per_elem)
    g = topology.world_size
    p_shard = sizes["fwd"] / 2  # one shard-sized buffer

    # Flat ring: every transition gated by the slow link; 2 payloads fwd +
    # 4 bwd = 6 shard-buffers per step, G steps.
    t_step = flat_ring_step_time(topology, p_shard)
    ring = 6 * g * t_step

    # Topology-aware rings: per-circulation phase costs for one shard buffer.
    phase = ring_phase_cost(topology, p_shard)
    # DoubleRing: fwd (2) + backward KV (2) overlap intra/inter; gradient
    # buffers (2) are serialized (the paper's "+2(I*T_intra + E*T_inter)").
    double_ring = 4 * phase.overlapped + 2 * phase.serialized

    # Burst: fwd (2) + Alg.2 backward (3 + 2/h) fully overlapped.
    burst_payload_rounds = 2 + (3 + 2 / hidden)
    burst = burst_payload_rounds * phase.overlapped

    return {"ring": ring, "double_ring": double_ring, "burst": burst}


# --- degraded-topology closed forms -------------------------------------------
#
# After k rank failures an elastic run continues on G - k survivors: every
# shard grows to S / (G - k) tokens and the ring has one fewer member per
# failure, so predicted traffic and time shift by exact, closed-form
# amounts.  The elastic acceptance tests pin the survivors' TrafficLog
# against these forms the same way the healthy-run invariants pin the
# 4Nd / 3Nd + 2N totals.


def degraded_attention_step_sizes(
    seq_len: int,
    hidden: int,
    world_size: int,
    failed: int = 1,
    bytes_per_elem: int = 2,
) -> dict[str, float]:
    """Per-step ring payload bytes after ``failed`` ranks died.

    Identical formulas to :func:`attention_step_sizes`, evaluated at the
    survivor count: shards grow from ``S/G`` to ``S/(G-k)`` tokens, so
    every circulating bundle grows by the factor ``G / (G - k)``.
    """
    survivors = world_size - failed
    if survivors < 1:
        raise ValueError(
            f"no survivors: world_size={world_size}, failed={failed}"
        )
    return attention_step_sizes(seq_len, hidden, survivors, bytes_per_elem)


def degraded_topology(topology: ClusterTopology, failed: int) -> ClusterTopology:
    """The survivor topology after ``failed`` rank deaths.

    Delegates to :func:`repro.topology.shrink_cluster` (the identity of
    the dead ranks does not matter for cost — survivors are re-densified),
    so the analytic layer and the elastic runtime can never disagree about
    the post-shrink node packing.
    """
    return shrink_cluster(topology, list(range(failed)))


def degraded_table1_comm_times(
    topology: ClusterTopology,
    seq_len: int,
    hidden: int,
    failed: int = 1,
    bytes_per_elem: int = 2,
) -> dict[str, float]:
    """Table 1's three formulas evaluated on the survivor topology.

    The shrunk cluster has both a bigger per-step payload (``S/(G-k)``
    shards) and a different intra/inter transition split (survivors are
    repacked into full nodes), so degraded times are *not* a simple
    rescaling of the healthy ones — they must be re-derived, which is
    exactly what this does.
    """
    return table1_comm_times(
        degraded_topology(topology, failed), seq_len, hidden, bytes_per_elem
    )


def failure_detection_time(
    kind: str,
    *,
    op_deadline_s: float = 3.0,
    escalation_factor: float = 2.0,
    max_extensions: int = 3,
    crash_notice_s: float = 0.5,
) -> float:
    """Worst-case simulated seconds from failure to declaration.

    Mirrors the :class:`repro.comm.LeaseConfig` protocol (defaults match
    its defaults; a cross-check test keeps the two in lockstep):

    * ``crash`` — the transport sees the reset: ``crash_notice_s``;
    * ``hang`` — silent, so the full ``op_deadline_s`` lease expires;
    * ``straggler`` — declared dead only after the lease has been extended
      ``max_extensions`` times: ``op_deadline_s * factor ** max_ext``.
    """
    if kind == "crash":
        return crash_notice_s
    if kind == "hang":
        return op_deadline_s
    if kind == "straggler":
        return op_deadline_s * escalation_factor**max_extensions
    raise ValueError(f"unknown failure kind {kind!r}")


def rank_failure_downtime(
    kind: str,
    *,
    steps_since_snapshot: int,
    step_time_s: float,
    replan_s: float = 0.0,
    **lease_kwargs,
) -> float:
    """Closed-form lost wall-clock for one recovered rank failure.

    ``detection + re-plan + replay``: the lease protocol's declaration
    time for ``kind``, the (usually negligible) re-planning cost, and the
    work since the last snapshot that must be recomputed on the survivors.
    """
    if steps_since_snapshot < 0:
        raise ValueError("steps_since_snapshot must be >= 0")
    detect = failure_detection_time(kind, **lease_kwargs)
    return detect + replan_s + steps_since_snapshot * step_time_s


# --- tile-count closed forms --------------------------------------------------
#
# The plan-driven flash kernels (repro.kernels.tileplan) tally how many
# (block_q x block_k) sub-tiles they computed vs. skipped.  The counts are
# predictable from the mask geometry alone; these closed forms are the
# independent cross-check the tile invariants in repro.testing.invariants
# (and the bench harness's gate) compare the measured counters against.


def _tile_bounds(n: int, block: int) -> list[tuple[int, int]]:
    return [(s, min(s + block, n)) for s in range(0, n, block)]


def causal_tile_counts(
    seq_len: int, block_q: int, block_k: int
) -> dict[str, int]:
    """Sub-tile census for a causal mask over ``[0, seq_len)``.

    A tile with query rows ``[q0, q1)`` and key columns ``[k0, k1)`` is
    *full* iff its earliest query sees the latest key (``q0 >= k1 - 1``)
    and *empty* iff its latest query precedes the earliest key
    (``q1 - 1 < k0``) — the exact interval test ``CausalMask.tile_state``
    applies.  Returns ``{"full", "partial", "empty", "total"}`` counts.
    """
    full = partial = empty = 0
    for q0, q1 in _tile_bounds(seq_len, block_q):
        for k0, k1 in _tile_bounds(seq_len, block_k):
            if q0 >= k1 - 1:
                full += 1
            elif q1 - 1 < k0:
                empty += 1
            else:
                partial += 1
    total = full + partial + empty
    return {"full": full, "partial": partial, "empty": empty, "total": total}


def sliding_window_tile_counts(
    seq_len: int, window: int, block_q: int, block_k: int
) -> dict[str, int]:
    """Sub-tile census for a causal sliding window of width ``window``.

    Mirrors ``SlidingWindowMask.tile_state``'s conservative interval test:
    with ``diff_min = q0 - (k1 - 1)`` and ``diff_max = (q1 - 1) - k0``,
    a tile is full iff ``diff_min >= 0 and diff_max < window`` and empty
    iff ``diff_max < 0 or diff_min >= window``.
    """
    full = partial = empty = 0
    for q0, q1 in _tile_bounds(seq_len, block_q):
        for k0, k1 in _tile_bounds(seq_len, block_k):
            diff_min = q0 - (k1 - 1)
            diff_max = (q1 - 1) - k0
            if diff_min >= 0 and diff_max < window:
                full += 1
            elif diff_max < 0 or diff_min >= window:
                empty += 1
            else:
                partial += 1
    total = full + partial + empty
    return {"full": full, "partial": partial, "empty": empty, "total": total}


def block_sparse_tile_counts(
    seq_len: int,
    mask_block_size: int,
    block_mask,
    intra_block_causal: bool,
    block_q: int,
    block_k: int,
) -> dict[str, int]:
    """Sub-tile census for a ``BlockSparseMask`` — block-level arithmetic,
    no token tiles.

    For each kernel tile the spanned mask blocks are ``q0 // B .. (q1-1)
    // B`` (likewise for keys); the tile is empty iff no spanned block
    pair is allowed, and full iff all are allowed and (under intra-block
    causality) the whole tile lies strictly below the token diagonal —
    the same conservative test ``BlockSparseMask.tile_state`` applies.
    """
    import numpy as np

    block_mask = np.asarray(block_mask, dtype=bool)
    full = partial = empty = 0
    for q0, q1 in _tile_bounds(seq_len, block_q):
        qb0, qb1 = q0 // mask_block_size, (q1 - 1) // mask_block_size + 1
        for k0, k1 in _tile_bounds(seq_len, block_k):
            kb0, kb1 = k0 // mask_block_size, (k1 - 1) // mask_block_size + 1
            sub = block_mask[qb0:qb1, kb0:kb1]
            if not sub.any():
                empty += 1
            elif intra_block_causal:
                if q0 >= k1 - 1 and sub.all():
                    full += 1
                else:
                    partial += 1
            elif sub.all():
                full += 1
            else:
                partial += 1
    total = full + partial + empty
    return {"full": full, "partial": partial, "empty": empty, "total": total}


def matmul_time(
    flops: float, peak_flops: float, efficiency: float = 0.62
) -> float:
    """Dense-matmul execution time at calibrated efficiency.

    ``efficiency`` defaults to 62 % of peak — typical for large bf16 GEMMs
    on Ampere and the single calibration constant of the performance model
    (chosen so the 14B/1M/32-GPU headline lands near the paper's ~52 % MFU
    once overlap losses are simulated).
    """
    if peak_flops <= 0:
        raise ValueError("peak_flops must be positive")
    if not 0 < efficiency <= 1:
        raise ValueError(f"efficiency must be in (0, 1], got {efficiency}")
    return flops / (peak_flops * efficiency)
