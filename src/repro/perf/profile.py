"""Bridge measured traffic logs to modeled communication time.

The numeric layer *measures* every transfer; the DES *models* durations.
This module connects them: given a :class:`~repro.comm.TrafficLog` from a
real (simulated-cluster) run and the topology it ran on, estimate the
serialized communication time per phase and per link class — useful for
profiling actual workloads (e.g. an engine training step) without
hand-building a DES graph, and for sanity-checking the analytic models
against executed traffic.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.comm.traffic import TrafficLog
from repro.topology import ClusterTopology, LinkClass
from repro.utils.format import format_bytes, format_table


@dataclass
class PhaseProfile:
    """Per-phase communication estimate."""

    phase: str
    bytes_by_link: dict[LinkClass, int] = field(default_factory=dict)
    transfers_by_link: dict[LinkClass, int] = field(default_factory=dict)
    #: serialized per-link busy time of the busiest rank (lower bound on
    #: the phase's communication wall-clock)
    busy_time_by_link: dict[LinkClass, float] = field(default_factory=dict)

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes_by_link.values())

    @property
    def bound_time(self) -> float:
        """Max over links of the busiest rank's busy time — the phase
        cannot finish faster even with perfect overlap between links."""
        return max(self.busy_time_by_link.values(), default=0.0)


def profile_traffic(log: TrafficLog, topology: ClusterTopology) -> dict[str, PhaseProfile]:
    """Aggregate a traffic log into per-phase profiles."""
    # per (phase, link): total bytes/counts; per (phase, link, src): busy time
    profiles: dict[str, PhaseProfile] = {}
    busy: dict[tuple[str, LinkClass, int], float] = defaultdict(float)
    for rec in log.records:
        prof = profiles.setdefault(rec.phase, PhaseProfile(phase=rec.phase))
        prof.bytes_by_link[rec.link] = prof.bytes_by_link.get(rec.link, 0) + rec.nbytes
        prof.transfers_by_link[rec.link] = (
            prof.transfers_by_link.get(rec.link, 0) + 1
        )
        busy[(rec.phase, rec.link, rec.src)] += topology.transfer_time(
            rec.nbytes, rec.link
        )
    for (phase, link, _src), t in busy.items():
        prof = profiles[phase]
        prof.busy_time_by_link[link] = max(
            prof.busy_time_by_link.get(link, 0.0), t
        )
    return profiles


def profile_report(log: TrafficLog, topology: ClusterTopology) -> str:
    """Human-readable per-phase communication table.

    An empty log yields an explicit "(no traffic recorded)" report rather
    than a bare header — profiling a run that never touched the
    communicator (tracing misconfigured, wrong communicator instance) is
    a diagnosable state, not an empty table.
    """
    profiles = profile_traffic(log, topology)
    if not profiles:
        return "(no traffic recorded)"
    rows = []
    for phase, prof in profiles.items():
        for link, nbytes in sorted(prof.bytes_by_link.items(),
                                   key=lambda kv: kv[0].value):
            rows.append([
                phase,
                link.value,
                format_bytes(nbytes),
                prof.transfers_by_link[link],
                f"{prof.busy_time_by_link.get(link, 0.0) * 1e3:.3f} ms",
            ])
    return format_table(
        ["phase", "link", "bytes", "transfers", "busiest-rank time"], rows
    )
